//===- pointsto/Solver.cpp -------------------------------------*- C++ -*-===//

#include "pointsto/Solver.h"
#include "dataflow/ConstString.h"
#include "pointsto/Priority.h"
#include "support/RunGuard.h"

#include <algorithm>
#include <cassert>

using namespace taj;

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

PointsToSolver::PointsToSolver(const Program &P, const ClassHierarchy &CHA,
                               PointsToOptions Opts)
    : P(P), CHA(CHA), Opts(std::move(Opts)), Policy(P, Ctxs, IKs,
                                                    this->Opts.Policy) {
  Prio = new PriorityManager(P, CG, this->Opts.Prioritized);
  HPtsEntries = Counters.handle("pts.entries");
  HCgNodes = Counters.handle("cg.nodes");
  HCgProcessed = Counters.handle("cg.processed");
  HMapKeysResolved = Counters.handle("conststr.map_keys_resolved");
  HReflResolved = Counters.handle("conststr.reflective_resolved");
  StringClass = P.findClass("String");
  ExceptionClass = P.findClass("Exception");
  WildChan = internSym("@map:*");
  ElemChan = internSym("@elem");
  RunSym = internSym("run");
  if (!this->Opts.ConstStrings) {
    // No precomputed facts (directly constructed solver): fall back to
    // the historical per-method ConstStr+Copy inference. Computed eagerly
    // so post-solve queries stay safe from any thread.
    ConstStringOptions CSO;
    CSO.Mode = StringAnalysisMode::Local;
    OwnedConstStr = std::make_unique<ConstStringResult>(
        analyzeConstStrings(P, CHA, CSO));
  }
}

PointsToSolver::~PointsToSolver() { delete Prio; }

Symbol PointsToSolver::internSym(std::string_view S) const {
  // Interning into the shared pool is the only mutation the solver performs
  // on the program; it is semantically benign (symbols are append-only).
  return const_cast<Program &>(P).Pool.intern(S);
}

std::vector<IKId> PointsToSolver::pointsToOfLocal(CGNodeId N,
                                                  ValueId V) const {
  // Read-only lookup: a key never interned during solving has an empty
  // set, so nothing is created on this post-solve path.
  return pointsTo(PKs.localLookup(N, V));
}

std::vector<IKId> PointsToSolver::pointsToMerged(MethodId M,
                                                 ValueId V) const {
  std::vector<IKId> Out;
  for (CGNodeId N : CG.nodesOf(M))
    for (IKId IK : pointsTo(PKs.localLookup(N, V)))
      Out.push_back(IK);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// Basic lattice operations
//===----------------------------------------------------------------------===//

void PointsToSolver::growTables() {
  size_t N = PKs.size();
  if (Pts.size() >= N)
    return;
  Pts.resize(N);
  CopySuccs.resize(N);
  LoadUses.resize(N);
  StoreUses.resize(N);
  CallUses.resize(N);
  Delta.resize(N);
  OnWorklist.resize(N, false);
}

const std::vector<IKId> &PointsToSolver::pointsTo(PKId PK) const {
  static const std::vector<IKId> Empty;
  return PK < Pts.size() ? Pts[PK] : Empty;
}

bool PointsToSolver::insertPointsTo(PKId PK, IKId IK) {
  growTables();
  auto &Set = Pts[PK];
  auto It = std::lower_bound(Set.begin(), Set.end(), IK);
  if (It != Set.end() && *It == IK)
    return false;
  Set.insert(It, IK);
  Counters.addTo(HPtsEntries);
  Delta[PK].push_back(IK);
  if (!OnWorklist[PK]) {
    OnWorklist[PK] = true;
    Worklist.push_back(PK);
  }
  return true;
}

void PointsToSolver::addCopyEdge(PKId From, PKId To) {
  if (From == To)
    return;
  growTables();
  uint64_t Key = (static_cast<uint64_t>(From) << 32) | To;
  if (!EdgeDedup.insert(Key).second)
    return;
  CopySuccs[From].push_back(To);
  // Propagate the current set immediately.
  // Copy to a temporary: insertPointsTo may not touch Pts[From] (From!=To),
  // but be defensive about re-entrancy.
  std::vector<IKId> Cur = Pts[From];
  for (IKId IK : Cur)
    insertPointsTo(To, IK);
}

PKId PointsToSolver::channelKey(IKId Base, Symbol Chan) {
  size_t Before = PKs.size();
  PKId PK = PKs.channel(Base, Chan);
  if (PKs.size() > Before) {
    growTables();
    Channels[Base].push_back(PK);
    // Wire up any wildcard readers already registered on this instance.
    auto It = WildcardReaders.find(Base);
    if (It != WildcardReaders.end())
      for (PKId Reader : It->second)
        addCopyEdge(PK, Reader);
  }
  return PK;
}

const std::vector<PKId> &PointsToSolver::channelsOf(IKId IK) const {
  static const std::vector<PKId> Empty;
  auto It = Channels.find(IK);
  return It == Channels.end() ? Empty : It->second;
}

IKId PointsToSolver::syntheticIK(StmtId Site, ClassId Cls) {
  InstanceKeyData D;
  D.Kind = IKKind::Synthetic;
  D.Site = Site;
  D.Cls = Cls;
  return IKs.intern(D);
}

//===----------------------------------------------------------------------===//
// Constant-string tracking (for dictionary keys and reflection, §4.2)
//===----------------------------------------------------------------------===//

Symbol PointsToSolver::constStringOf(MethodId M, ValueId V) const {
  const ConstStringResult *CS =
      Opts.ConstStrings ? Opts.ConstStrings : OwnedConstStr.get();
  return CS ? CS->valueOf(M, V) : ~0u;
}

Symbol PointsToSolver::mapChannel(CGNodeId Caller, const Instruction &I,
                                  size_t KeyArg) {
  if (KeyArg >= I.Args.size())
    return WildChan;
  Symbol Lit = constStringOf(CG.node(Caller).M, I.Args[KeyArg]);
  if (Lit == ~0u)
    return WildChan;
  Counters.addTo(HMapKeysResolved);
  std::string Name = "@map:";
  Name += P.Pool.str(Lit);
  return internSym(Name);
}

/// Records one unresolved reflective call site (§4.2.3) both as the
/// aggregate reflection.unresolved counter and as a per-site key
/// ("reflection.unresolved_site.<Class.method>#<stmt>") surfaced through
/// --stats-json, so users can see which sites the analysis gave up on.
void PointsToSolver::noteUnresolvedReflection(CGNodeId Caller, StmtId Site) {
  Counters.add("reflection.unresolved");
  Counters.add("reflection.unresolved_site." +
               P.methodName(CG.node(Caller).M) + "#" + std::to_string(Site));
}

//===----------------------------------------------------------------------===//
// Node management
//===----------------------------------------------------------------------===//

CGNodeId PointsToSolver::ensureNode(MethodId M, CtxId Ctx) {
  bool IsNew = false;
  CGNodeId N = CG.ensureNode(M, Ctx, IsNew);
  if (IsNew) {
    Counters.addTo(HCgNodes);
    Prio->onNodeCreated(N);
  }
  return N;
}

bool PointsToSolver::isMethodProcessed(MethodId M) const {
  for (CGNodeId N : CG.nodesOf(M))
    if (CG.node(N).ConstraintsAdded)
      return true;
  return false;
}

const std::vector<MethodId> &
PointsToSolver::intrinsicCalleesAt(StmtId Site) const {
  static const std::vector<MethodId> Empty;
  auto It = IntrinsicCallees.find(Site);
  return It == IntrinsicCallees.end() ? Empty : It->second;
}

//===----------------------------------------------------------------------===//
// Main loop
//===----------------------------------------------------------------------===//

void PointsToSolver::solve(const std::vector<MethodId> &Entries) {
  assert(!Solved && "solve() called twice");
  Solved = true;
  CG.setGuard(Opts.Guard);
  for (MethodId E : Entries)
    ensureNode(E, EverywhereCtx);

  while (!Prio->empty()) {
    if (Opts.MaxCallGraphNodes != 0 &&
        CG.numProcessed() >= Opts.MaxCallGraphNodes) {
      BudgetHit = true;
      Counters.add("cg.budget_hit");
      break;
    }
    if (Opts.Guard && !Opts.Guard->checkpoint()) {
      // Deadline/memory/cancellation cutoff: the call graph (and thus the
      // analysis) is deliberately underapproximate, like a node budget.
      BudgetHit = true;
      Counters.add("cg.guard_stop");
      break;
    }
    CGNodeId N = Prio->pop();
    CG.markProcessed(N);
    Counters.addTo(HCgProcessed);
    addConstraints(N);
    // Solve before relaxing priorities: virtual dispatch discovers callee
    // nodes during propagation, and the locality rule must see them.
    propagate();
    Prio->onNodeProcessed(N);
  }
  propagate();
}

void PointsToSolver::propagate() {
  growTables();
  while (!Worklist.empty()) {
    if (Opts.Guard && !Opts.Guard->checkpoint()) {
      // Leave the remaining frontier unprocessed; points-to sets stay an
      // underapproximation of the fixpoint, which every client tolerates.
      Counters.add("pts.guard_stop");
      break;
    }
    PKId PK = Worklist.back();
    Worklist.pop_back();
    OnWorklist[PK] = false;
    std::vector<IKId> Moved = std::move(Delta[PK]);
    Delta[PK].clear();
    for (IKId IK : Moved) {
      for (size_t E = 0; E < CopySuccs[PK].size(); ++E)
        insertPointsTo(CopySuccs[PK][E], IK);
      handleNewPointsTo(PK, IK);
    }
  }
}

void PointsToSolver::handleNewPointsTo(PKId PK, IKId IK) {
  growTables();
  for (size_t U = 0; U < LoadUses[PK].size(); ++U) {
    LoadUse LU = LoadUses[PK][U];
    switch (LU.K) {
    case LoadUse::Field:
      addCopyEdge(channelFieldOrPlain(IK, LU), LU.Dst);
      break;
    case LoadUse::Array:
      addCopyEdge(PKs.arrayElem(IK), LU.Dst);
      break;
    case LoadUse::ChanConst:
      addCopyEdge(channelKey(IK, LU.FieldOrChan), LU.Dst);
      break;
    case LoadUse::ChanWild: {
      auto &Readers = WildcardReaders[IK];
      if (std::find(Readers.begin(), Readers.end(), LU.Dst) == Readers.end()) {
        Readers.push_back(LU.Dst);
        for (PKId Chan : channelsOf(IK))
          addCopyEdge(Chan, LU.Dst);
      }
      break;
    }
    }
    growTables();
  }
  for (size_t U = 0; U < StoreUses[PK].size(); ++U) {
    StoreUse SU = StoreUses[PK][U];
    switch (SU.K) {
    case StoreUse::Field:
      addCopyEdge(SU.Src, PKs.field(IK, SU.FieldOrChan));
      break;
    case StoreUse::Array:
      addCopyEdge(SU.Src, PKs.arrayElem(IK));
      break;
    case StoreUse::Chan:
      addCopyEdge(SU.Src, channelKey(IK, SU.FieldOrChan));
      break;
    }
    growTables();
  }
  for (size_t U = 0; U < CallUses[PK].size(); ++U) {
    CallUse CU = CallUses[PK][U];
    dispatchCall(CU, IK);
    growTables();
  }
  auto InvM = InvokeByMethodPK.find(PK);
  if (InvM != InvokeByMethodPK.end()) {
    const InstanceKeyData &D = IKs.data(IK);
    if (D.Kind == IKKind::MethodObj) {
      for (uint32_t Idx : InvM->second) {
        MethodId Target = D.Extra;
        const Method &TM = P.Methods[Target];
        if (!TM.hasBody())
          continue;
        InvokeSite &IS = Invokes[Idx];
        CGNodeId TN = ensureNode(Target, Ctxs.callSite(IS.Site));
        if (std::find(IS.Targets.begin(), IS.Targets.end(), TN) ==
            IS.Targets.end()) {
          IS.Targets.push_back(TN);
          CG.addEdge(IS.Caller, IS.Site, TN);
          invokeBind(IS, TN);
        }
      }
    }
  }
  auto InvA = InvokeByArrayPK.find(PK);
  if (InvA != InvokeByArrayPK.end()) {
    for (uint32_t Idx : InvA->second) {
      InvokeSite &IS = Invokes[Idx];
      if (std::find(IS.ArgArrays.begin(), IS.ArgArrays.end(), IK) !=
          IS.ArgArrays.end())
        continue;
      IS.ArgArrays.push_back(IK);
      for (CGNodeId TN : IS.Targets)
        invokeBindArray(IS, TN, IK);
    }
  }
}

PKId PointsToSolver::channelFieldOrPlain(IKId IK, const LoadUse &LU) {
  return PKs.field(IK, LU.FieldOrChan);
}

//===----------------------------------------------------------------------===//
// Constraint generation
//===----------------------------------------------------------------------===//

void PointsToSolver::registerLoadUse(PKId Base, LoadUse LU) {
  growTables();
  LoadUses[Base].push_back(LU);
  std::vector<IKId> Cur = Pts[Base];
  for (IKId IK : Cur) {
    switch (LU.K) {
    case LoadUse::Field:
      addCopyEdge(PKs.field(IK, LU.FieldOrChan), LU.Dst);
      break;
    case LoadUse::Array:
      addCopyEdge(PKs.arrayElem(IK), LU.Dst);
      break;
    case LoadUse::ChanConst:
      addCopyEdge(channelKey(IK, LU.FieldOrChan), LU.Dst);
      break;
    case LoadUse::ChanWild: {
      auto &Readers = WildcardReaders[IK];
      if (std::find(Readers.begin(), Readers.end(), LU.Dst) ==
          Readers.end()) {
        Readers.push_back(LU.Dst);
        for (PKId Chan : channelsOf(IK))
          addCopyEdge(Chan, LU.Dst);
      }
      break;
    }
    }
    growTables();
  }
}

void PointsToSolver::registerStoreUse(PKId Base, StoreUse SU) {
  growTables();
  StoreUses[Base].push_back(SU);
  std::vector<IKId> Cur = Pts[Base];
  for (IKId IK : Cur) {
    switch (SU.K) {
    case StoreUse::Field:
      addCopyEdge(SU.Src, PKs.field(IK, SU.FieldOrChan));
      break;
    case StoreUse::Array:
      addCopyEdge(SU.Src, PKs.arrayElem(IK));
      break;
    case StoreUse::Chan:
      addCopyEdge(SU.Src, channelKey(IK, SU.FieldOrChan));
      break;
    }
    growTables();
  }
}

void PointsToSolver::registerCallUse(PKId Recv, CallUse CU) {
  growTables();
  CallUses[Recv].push_back(CU);
  std::vector<IKId> Cur = Pts[Recv];
  for (IKId IK : Cur) {
    dispatchCall(CU, IK);
    growTables();
  }
}

void PointsToSolver::addConstraints(CGNodeId N) {
  // By value: call dispatch below can create new call-graph nodes, and the
  // vector growth would invalidate a reference into CG.Nodes.
  const CGNode Node = CG.node(N);
  const Method &M = P.Methods[Node.M];
  if (!M.hasBody())
    return;
  auto L = [&](ValueId V) { return PKs.local(N, V); };

  StmtId Stmt = P.methodStmtBegin(Node.M);
  for (const BasicBlock &BB : M.Blocks) {
    for (const Instruction &I : BB.Insts) {
      StmtId Site = Stmt++;
      switch (I.Op) {
      case Opcode::ConstStr: {
        if (StringClass != InvalidId) {
          InstanceKeyData D;
          D.Kind = IKKind::Alloc;
          D.Site = Site;
          D.Cls = StringClass;
          insertPointsTo(L(I.Dst), IKs.intern(D));
        }
        break;
      }
      case Opcode::New: {
        InstanceKeyData D;
        D.Kind = IKKind::Alloc;
        D.Site = Site;
        D.Heap = Policy.heapContextForAlloc(M, Node.Ctx);
        D.Cls = I.Cls;
        insertPointsTo(L(I.Dst), IKs.intern(D));
        break;
      }
      case Opcode::NewArray: {
        InstanceKeyData D;
        D.Kind = IKKind::Array;
        D.Site = Site;
        D.Heap = Policy.heapContextForAlloc(M, Node.Ctx);
        D.Cls = I.Cls;
        insertPointsTo(L(I.Dst), IKs.intern(D));
        break;
      }
      case Opcode::Copy:
        addCopyEdge(L(I.Args[0]), L(I.Dst));
        break;
      case Opcode::Phi:
        for (ValueId A : I.Args)
          if (A != NoValue)
            addCopyEdge(L(A), L(I.Dst));
        break;
      case Opcode::Load:
        registerLoadUse(L(I.Args[0]), {LoadUse::Field, I.Field, L(I.Dst)});
        break;
      case Opcode::Store:
        registerStoreUse(L(I.Args[0]), {StoreUse::Field, I.Field,
                                        L(I.Args[1])});
        break;
      case Opcode::ArrayLoad:
        registerLoadUse(L(I.Args[0]), {LoadUse::Array, 0, L(I.Dst)});
        break;
      case Opcode::ArrayStore:
        registerStoreUse(L(I.Args[0]), {StoreUse::Array, 0, L(I.Args[1])});
        break;
      case Opcode::StaticLoad:
        addCopyEdge(PKs.staticField(I.Field), L(I.Dst));
        break;
      case Opcode::StaticStore:
        addCopyEdge(L(I.Args[0]), PKs.staticField(I.Field));
        break;
      case Opcode::Return:
        if (!I.Args.empty())
          addCopyEdge(L(I.Args[0]), PKs.ret(N));
        break;
      case Opcode::Caught:
        if (ExceptionClass != InvalidId)
          insertPointsTo(L(I.Dst), syntheticIK(Site, ExceptionClass));
        break;
      case Opcode::Call: {
        if (I.CKind == CallKind::Static) {
          MethodId Callee = CHA.resolveVirtual(I.Cls, I.CalleeName);
          if (Callee == InvalidId) {
            Counters.add("call.unresolved");
            break;
          }
          dispatchResolved(N, Site, I, Callee, InvalidId);
          break;
        }
        MethodId Exact = InvalidId;
        if (I.CKind == CallKind::Special) {
          Exact = CHA.resolveVirtual(I.Cls, I.CalleeName);
          if (Exact == InvalidId) {
            Counters.add("call.unresolved");
            break;
          }
        }
        registerCallUse(L(I.Args[0]), {N, Site, &I, Exact});
        break;
      }
      default:
        break;
      }
    }
  }
}

void PointsToSolver::dispatchCall(const CallUse &CU, IKId RecvIK) {
  const Instruction &I = *CU.I;
  MethodId Callee = CU.Exact;
  if (Callee == InvalidId) {
    Callee = CHA.resolveVirtual(IKs.data(RecvIK).Cls, I.CalleeName);
    if (Callee == InvalidId) {
      Counters.add("call.unresolved");
      return;
    }
  }
  dispatchResolved(CU.Caller, CU.Site, I, Callee, RecvIK);
}

void PointsToSolver::dispatchResolved(CGNodeId Caller, StmtId Site,
                                      const Instruction &I, MethodId Callee,
                                      IKId RecvIK) {
  const Method &CalM = P.Methods[Callee];
  if (Opts.ExcludeWhitelisted &&
      P.Classes[CalM.Owner].is(classflags::Whitelisted)) {
    Counters.add("call.whitelist_skipped");
    return;
  }
  if (CalM.Intr != Intrinsic::None || !CalM.hasBody()) {
    auto &Targets = IntrinsicCallees[Site];
    if (std::find(Targets.begin(), Targets.end(), Callee) == Targets.end())
      Targets.push_back(Callee);
    applyIntrinsic(Caller, Site, I, CalM, RecvIK);
    return;
  }
  CtxId Ctx = Policy.selectCalleeContext(CalM, Site, RecvIK);
  bindCall(Caller, Site, I, Callee, Ctx, RecvIK);
}

void PointsToSolver::bindCall(CGNodeId Caller, StmtId Site,
                              const Instruction &I, MethodId Callee,
                              CtxId CalleeCtx, IKId RecvIK) {
  CGNodeId CalleeNode = ensureNode(Callee, CalleeCtx);
  CG.addEdge(Caller, Site, CalleeNode);
  const Method &CalM = P.Methods[Callee];
  uint32_t Start = 0;
  if (RecvIK != InvalidId) {
    // Dispatch-filtered receiver binding: only the instance key that
    // resolved here flows into the formal receiver.
    if (CalM.NumParams > 0)
      insertPointsTo(PKs.local(CalleeNode, 0), RecvIK);
    Start = 1;
  }
  for (uint32_t K = Start; K < CalM.NumParams && K < I.Args.size(); ++K)
    addCopyEdge(PKs.local(Caller, I.Args[K]),
                PKs.local(CalleeNode, static_cast<ValueId>(K)));
  if (I.Dst != NoValue)
    addCopyEdge(PKs.ret(CalleeNode), PKs.local(Caller, I.Dst));
}

//===----------------------------------------------------------------------===//
// Synthetic models (§4.2)
//===----------------------------------------------------------------------===//

void PointsToSolver::invokeBind(InvokeSite &IS, CGNodeId Target) {
  const Instruction &I = *IS.I;
  const Method &TM = P.Methods[CG.node(Target).M];
  // invoke(methodObj, recv, argsArray)
  if (!TM.IsStatic && TM.NumParams > 0 && I.Args.size() > 1)
    addCopyEdge(PKs.local(IS.Caller, I.Args[1]), PKs.local(Target, 0));
  if (I.Dst != NoValue)
    addCopyEdge(PKs.ret(Target), PKs.local(IS.Caller, I.Dst));
  for (IKId Arr : IS.ArgArrays)
    invokeBindArray(IS, Target, Arr);
}

void PointsToSolver::invokeBindArray(InvokeSite &IS, CGNodeId Target,
                                     IKId ArrIK) {
  (void)IS;
  const Method &TM = P.Methods[CG.node(Target).M];
  uint32_t Start = TM.IsStatic ? 0 : 1;
  for (uint32_t K = Start; K < TM.NumParams; ++K)
    addCopyEdge(PKs.arrayElem(ArrIK),
                PKs.local(Target, static_cast<ValueId>(K)));
}

void PointsToSolver::applyIntrinsic(CGNodeId Caller, StmtId Site,
                                    const Instruction &I, const Method &CalM,
                                    IKId RecvIK) {
  auto L = [&](ValueId V) { return PKs.local(Caller, V); };
  size_t Off = CalM.IsStatic ? 0 : 1; // first real argument index
  ClassId RetCls =
      CalM.RetType.isRefLike() ? CalM.RetType.Cls : StringClass;

  switch (CalM.Intr) {
  case Intrinsic::None:
    // Bodiless non-intrinsic (native/abstract): default model returns a
    // fresh object of the declared return type.
    if (I.Dst != NoValue && CalM.RetType.isRefLike())
      insertPointsTo(L(I.Dst), syntheticIK(Site, CalM.RetType.Cls));
    Counters.add("call.native_default_model");
    break;
  case Intrinsic::Identity:
    if (I.Dst != NoValue)
      for (ValueId A : I.Args)
        addCopyEdge(L(A), L(I.Dst));
    break;
  case Intrinsic::StringTransfer:
  case Intrinsic::Sanitize:
  case Intrinsic::SourceReturn:
  case Intrinsic::GetMessage:
    if (I.Dst != NoValue && RetCls != InvalidId)
      insertPointsTo(L(I.Dst), syntheticIK(Site, RetCls));
    break;
  case Intrinsic::SinkConsume:
    break;
  case Intrinsic::MapPut: {
    if (RecvIK == InvalidId || I.Args.size() < Off + 2)
      break;
    Symbol Chan = mapChannel(Caller, I, Off);
    addCopyEdge(L(I.Args[Off + 1]), channelKey(RecvIK, Chan));
    break;
  }
  case Intrinsic::MapGet: {
    if (RecvIK == InvalidId || I.Dst == NoValue || I.Args.size() < Off + 1)
      break;
    Symbol Lit = constStringOf(CG.node(Caller).M, I.Args[Off]);
    if (Lit != ~0u) {
      Counters.addTo(HMapKeysResolved);
      std::string Name = "@map:";
      Name += P.Pool.str(Lit);
      Symbol Chan = internSym(Name);
      addCopyEdge(channelKey(RecvIK, Chan), L(I.Dst));
      addCopyEdge(channelKey(RecvIK, WildChan), L(I.Dst));
    } else {
      // Unknown key: reads every channel, present and future.
      auto &Readers = WildcardReaders[RecvIK];
      PKId Dst = L(I.Dst);
      if (std::find(Readers.begin(), Readers.end(), Dst) == Readers.end()) {
        Readers.push_back(Dst);
        for (PKId Chan : channelsOf(RecvIK))
          addCopyEdge(Chan, Dst);
      }
    }
    break;
  }
  case Intrinsic::CollAdd:
    if (RecvIK != InvalidId && I.Args.size() >= Off + 1)
      addCopyEdge(L(I.Args[Off]), channelKey(RecvIK, ElemChan));
    break;
  case Intrinsic::CollGet:
    if (RecvIK != InvalidId && I.Dst != NoValue)
      addCopyEdge(channelKey(RecvIK, ElemChan), L(I.Dst));
    break;
  case Intrinsic::ClassForName: {
    if (I.Dst == NoValue || I.Args.size() < Off + 1)
      break;
    Symbol Lit = constStringOf(CG.node(Caller).M, I.Args[Off]);
    if (Lit == ~0u) {
      noteUnresolvedReflection(Caller, Site);
      break;
    }
    ClassId Target = P.findClass(P.Pool.str(Lit));
    if (Target == InvalidId) {
      noteUnresolvedReflection(Caller, Site);
      break;
    }
    Counters.addTo(HReflResolved);
    InstanceKeyData D;
    D.Kind = IKKind::ClassObj;
    D.Cls = CalM.RetType.isRefLike() ? CalM.RetType.Cls : InvalidId;
    D.Extra = Target;
    insertPointsTo(L(I.Dst), IKs.intern(D));
    break;
  }
  case Intrinsic::GetMethod: {
    if (RecvIK == InvalidId || I.Dst == NoValue || I.Args.size() < Off + 1)
      break;
    const InstanceKeyData &RD = IKs.data(RecvIK);
    if (RD.Kind != IKKind::ClassObj)
      break;
    Symbol Lit = constStringOf(CG.node(Caller).M, I.Args[Off]);
    if (Lit == ~0u) {
      noteUnresolvedReflection(Caller, Site);
      break;
    }
    MethodId Target = CHA.resolveVirtual(RD.Extra, Lit);
    if (Target == InvalidId) {
      noteUnresolvedReflection(Caller, Site);
      break;
    }
    Counters.addTo(HReflResolved);
    InstanceKeyData D;
    D.Kind = IKKind::MethodObj;
    D.Cls = CalM.RetType.isRefLike() ? CalM.RetType.Cls : InvalidId;
    D.Extra = Target;
    insertPointsTo(L(I.Dst), IKs.intern(D));
    break;
  }
  case Intrinsic::MethodInvoke: {
    if (RecvIK == InvalidId)
      break;
    // Find or create the invoke state for this (caller, site).
    uint64_t Key = (static_cast<uint64_t>(Caller) << 32) | Site;
    auto It = InvokeIndex.find(Key);
    uint32_t Idx;
    if (It == InvokeIndex.end()) {
      Idx = static_cast<uint32_t>(Invokes.size());
      InvokeSite IS;
      IS.Caller = Caller;
      IS.Site = Site;
      IS.I = &I;
      Invokes.push_back(IS);
      InvokeIndex.emplace(Key, Idx);
      // Register interest in the args array (I.Args[2]).
      if (I.Args.size() > 2) {
        PKId ArrPK = L(I.Args[2]);
        InvokeByArrayPK[ArrPK].push_back(Idx);
        std::vector<IKId> Cur = pointsTo(ArrPK);
        for (IKId AIK : Cur) {
          InvokeSite &IS2 = Invokes[Idx];
          if (std::find(IS2.ArgArrays.begin(), IS2.ArgArrays.end(), AIK) ==
              IS2.ArgArrays.end())
            IS2.ArgArrays.push_back(AIK);
        }
      }
      // Register interest in the Method object (the receiver PK).
      InvokeByMethodPK[L(I.Args[0])].push_back(Idx);
    } else {
      Idx = It->second;
    }
    // Handle the Method object that triggered this dispatch.
    const InstanceKeyData &RD = IKs.data(RecvIK);
    if (RD.Kind != IKKind::MethodObj)
      break;
    MethodId Target = RD.Extra;
    if (!P.Methods[Target].hasBody())
      break;
    InvokeSite &IS = Invokes[Idx];
    CGNodeId TN = ensureNode(Target, Ctxs.callSite(Site));
    if (std::find(IS.Targets.begin(), IS.Targets.end(), TN) ==
        IS.Targets.end()) {
      IS.Targets.push_back(TN);
      CG.addEdge(Caller, Site, TN);
      invokeBind(IS, TN);
    }
    break;
  }
  case Intrinsic::ThreadStart: {
    if (RecvIK == InvalidId)
      break;
    MethodId Run = CHA.resolveVirtual(IKs.data(RecvIK).Cls, RunSym);
    if (Run == InvalidId || !P.Methods[Run].hasBody())
      break;
    CtxId Ctx = Policy.selectCalleeContext(P.Methods[Run], Site, RecvIK);
    CGNodeId TN = ensureNode(Run, Ctx);
    CG.addEdge(Caller, Site, TN);
    if (P.Methods[Run].NumParams > 0)
      insertPointsTo(PKs.local(TN, 0), RecvIK);
    Counters.add("model.thread_start");
    break;
  }
  case Intrinsic::JndiLookup: {
    if (I.Dst == NoValue || I.Args.size() < Off + 1)
      break;
    Symbol Lit = constStringOf(CG.node(Caller).M, I.Args[Off]);
    if (Lit == ~0u)
      break;
    auto It = Opts.JndiBindings.find(std::string(P.Pool.str(Lit)));
    if (It == Opts.JndiBindings.end())
      break;
    InstanceKeyData D;
    D.Kind = IKKind::Singleton;
    D.Cls = It->second;
    D.Extra = It->second;
    insertPointsTo(L(I.Dst), IKs.intern(D));
    Counters.add("model.jndi_lookup");
    break;
  }
  case Intrinsic::HomeCreate: {
    if (I.Dst == NoValue)
      break;
    ClassId Bean = RetCls;
    if (RecvIK != InvalidId) {
      auto It = Opts.EjbHomeToBean.find(IKs.data(RecvIK).Cls);
      if (It != Opts.EjbHomeToBean.end())
        Bean = It->second;
    }
    if (Bean != InvalidId)
      insertPointsTo(L(I.Dst), syntheticIK(Site, Bean));
    Counters.add("model.home_create");
    break;
  }
  }
}
