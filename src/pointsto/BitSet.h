//===- pointsto/BitSet.h - Chunked sparse bitmap over IKIds ----*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The points-to set representation used by the solver: a chunked sparse
/// bitmap. Set members are dense small integers (IKIds), so each set is kept
/// as a sorted array of (32-bit word index, 64-bit bit word) chunks. Zero
/// words are never stored, which makes structural equality a plain chunk
/// compare and keeps iteration proportional to the populated chunks.
/// Iteration and \c unionWith always yield members in ascending order, so
/// consumers that relied on the old sorted-vector representation (query
/// surface, persist writer) observe identical order.
///
/// The chunk array lives in a small inline buffer until it outgrows it:
/// the solver materializes one set per pointer key and most of them span
/// one or two 64-bit chunks, so the common case performs no heap
/// allocation at all (and no deallocation on teardown).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_POINTSTO_BITSET_H
#define TAJ_POINTSTO_BITSET_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <utility>
#include <vector>

namespace taj {

/// A sparse bitmap over uint32_t values, chunked into 64-bit words.
class SparseBitSet {
public:
  struct Chunk {
    uint32_t Idx;  ///< Word index (value >> 6); no zero words stored.
    uint64_t Word; ///< The 64 bits covering [Idx*64, Idx*64+63].
  };

  SparseBitSet() {}
  SparseBitSet(const SparseBitSet &O) { copyFrom(O); }
  SparseBitSet(SparseBitSet &&O) noexcept { moveFrom(O); }
  SparseBitSet &operator=(const SparseBitSet &O) {
    if (this != &O) {
      Size = 0;
      Cnt = 0;
      copyFrom(O);
    }
    return *this;
  }
  SparseBitSet &operator=(SparseBitSet &&O) noexcept {
    if (this != &O) {
      if (Ptr != Inline)
        delete[] Ptr;
      moveFrom(O);
    }
    return *this;
  }
  ~SparseBitSet() {
    if (Ptr != Inline)
      delete[] Ptr;
  }

  bool empty() const { return Cnt == 0; }
  uint32_t count() const { return Cnt; }

  void clear() {
    Size = 0;
    Cnt = 0;
  }

  /// Inserts \p V; returns true iff it was not already present.
  bool insert(uint32_t V) {
    const uint32_t WI = V >> 6;
    const uint64_t Bit = uint64_t(1) << (V & 63);
    uint32_t Pos = lowerBound(WI);
    if (Pos < Size && Ptr[Pos].Idx == WI) {
      if (Ptr[Pos].Word & Bit)
        return false;
      Ptr[Pos].Word |= Bit;
    } else {
      if (Size == Cap)
        grow(Size + 1);
      std::memmove(Ptr + Pos + 1, Ptr + Pos, (Size - Pos) * sizeof(Chunk));
      Ptr[Pos].Idx = WI;
      Ptr[Pos].Word = Bit;
      ++Size;
    }
    ++Cnt;
    return true;
  }

  bool contains(uint32_t V) const {
    const uint32_t WI = V >> 6;
    uint32_t Pos = lowerBound(WI);
    return Pos < Size && Ptr[Pos].Idx == WI &&
           (Ptr[Pos].Word & (uint64_t(1) << (V & 63)));
  }

  /// Unions \p O into this set. Members newly added are appended to
  /// \p NewBits in ascending order. Returns true iff anything changed.
  /// \p O must not alias this set.
  bool unionWith(const SparseBitSet &O, std::vector<uint32_t> &NewBits) {
    if (O.Cnt == 0)
      return false;
    // Chunks present in O but absent here, gathered for one merge at the
    // end; stays heap-free when O introduces no new chunks.
    std::vector<Chunk> Fresh;
    bool Changed = false;
    uint32_t I = 0;
    for (uint32_t J = 0; J < O.Size; ++J) {
      const uint32_t WI = O.Ptr[J].Idx;
      while (I < Size && Ptr[I].Idx < WI)
        ++I;
      if (I < Size && Ptr[I].Idx == WI) {
        const uint64_t Add = O.Ptr[J].Word & ~Ptr[I].Word;
        if (Add) {
          Ptr[I].Word |= Add;
          Cnt += uint32_t(std::popcount(Add));
          appendBits(NewBits, WI, Add);
          Changed = true;
        }
      } else {
        Fresh.push_back(O.Ptr[J]);
        Cnt += uint32_t(std::popcount(O.Ptr[J].Word));
        appendBits(NewBits, WI, O.Ptr[J].Word);
        Changed = true;
      }
    }
    if (!Fresh.empty())
      mergeFresh(Fresh);
    return Changed;
  }

  /// True iff every member of \p O is a member of this set.
  bool containsAll(const SparseBitSet &O) const {
    if (O.Cnt > Cnt)
      return false;
    uint32_t I = 0;
    for (uint32_t J = 0; J < O.Size; ++J) {
      while (I < Size && Ptr[I].Idx < O.Ptr[J].Idx)
        ++I;
      if (I == Size || Ptr[I].Idx != O.Ptr[J].Idx ||
          (O.Ptr[J].Word & ~Ptr[I].Word))
        return false;
    }
    return true;
  }

  /// Structural equality; valid because zero words are never stored.
  bool operator==(const SparseBitSet &O) const {
    if (Cnt != O.Cnt || Size != O.Size)
      return false;
    for (uint32_t I = 0; I < Size; ++I)
      if (Ptr[I].Idx != O.Ptr[I].Idx || Ptr[I].Word != O.Ptr[I].Word)
        return false;
    return true;
  }
  bool operator!=(const SparseBitSet &O) const { return !(*this == O); }

  /// Appends all members to \p Out (any push_back container of uint32_t)
  /// in ascending order.
  template <typename Vec> void appendTo(Vec &Out) const {
    for (uint32_t I = 0; I < Size; ++I)
      appendBits(Out, Ptr[I].Idx, Ptr[I].Word);
  }

  /// Forward iterator yielding members in ascending order.
  class const_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t *;
    using reference = uint32_t;

    const_iterator() = default;
    const_iterator(const SparseBitSet *S, uint32_t WI)
        : S(S), WI(WI), Rem(WI < S->Size ? S->Ptr[WI].Word : 0) {}

    uint32_t operator*() const {
      return (S->Ptr[WI].Idx << 6) + uint32_t(std::countr_zero(Rem));
    }
    const_iterator &operator++() {
      Rem &= Rem - 1;
      if (!Rem) {
        ++WI;
        Rem = WI < S->Size ? S->Ptr[WI].Word : 0;
      }
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator Tmp = *this;
      ++*this;
      return Tmp;
    }
    bool operator==(const const_iterator &O) const {
      return WI == O.WI && Rem == O.Rem;
    }
    bool operator!=(const const_iterator &O) const { return !(*this == O); }

  private:
    const SparseBitSet *S = nullptr;
    uint32_t WI = 0;
    uint64_t Rem = 0;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, Size); }

  /// Raw chunk access for the persist serializer (cold path: materialized
  /// by value since chunks are stored interleaved).
  std::vector<uint32_t> wordIndices() const {
    std::vector<uint32_t> Out;
    Out.reserve(Size);
    for (uint32_t I = 0; I < Size; ++I)
      Out.push_back(Ptr[I].Idx);
    return Out;
  }
  std::vector<uint64_t> words() const {
    std::vector<uint64_t> Out;
    Out.reserve(Size);
    for (uint32_t I = 0; I < Size; ++I)
      Out.push_back(Ptr[I].Word);
    return Out;
  }

  /// Rebuilds from raw chunks (persist restore). Returns false if the
  /// encoding is invalid: unsorted/duplicate indices or a zero word.
  bool assign(std::vector<uint32_t> RawIdx, std::vector<uint64_t> RawWords) {
    if (RawIdx.size() != RawWords.size())
      return false;
    uint32_t N = 0;
    for (size_t I = 0; I < RawIdx.size(); ++I) {
      if (I > 0 && RawIdx[I] <= RawIdx[I - 1])
        return false;
      if (RawWords[I] == 0)
        return false;
      N += uint32_t(std::popcount(RawWords[I]));
    }
    Size = 0;
    if (RawIdx.size() > Cap)
      grow(uint32_t(RawIdx.size()));
    for (size_t I = 0; I < RawIdx.size(); ++I)
      Ptr[I] = {RawIdx[I], RawWords[I]};
    Size = uint32_t(RawIdx.size());
    Cnt = N;
    return true;
  }

private:
  static constexpr uint32_t InlineCap = 2;

  uint32_t lowerBound(uint32_t WI) const {
    uint32_t Lo = 0, Hi = Size;
    while (Lo < Hi) {
      uint32_t Mid = (Lo + Hi) / 2;
      if (Ptr[Mid].Idx < WI)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo;
  }

  template <typename Vec>
  static void appendBits(Vec &Out, uint32_t WI, uint64_t W) {
    const uint32_t Base = WI << 6;
    for (; W; W &= W - 1)
      Out.push_back(Base + uint32_t(std::countr_zero(W)));
  }

  /// Backward in-place merge of new chunks; \p Fresh is sorted ascending
  /// and disjoint from the stored indices.
  void mergeFresh(const std::vector<Chunk> &Fresh) {
    const uint32_t OldN = Size, Add = uint32_t(Fresh.size());
    if (OldN + Add > Cap)
      grow(OldN + Add);
    uint32_t A = OldN, B = Add, W = OldN + Add;
    while (B > 0) {
      if (A > 0 && Ptr[A - 1].Idx > Fresh[B - 1].Idx) {
        Ptr[W - 1] = Ptr[A - 1];
        --A;
      } else {
        Ptr[W - 1] = Fresh[B - 1];
        --B;
      }
      --W;
    }
    Size = OldN + Add;
  }

  void grow(uint32_t Need) {
    uint32_t NewCap = Cap * 2;
    if (NewCap < Need)
      NewCap = Need;
    Chunk *NewPtr = new Chunk[NewCap];
    std::memcpy(NewPtr, Ptr, Size * sizeof(Chunk));
    if (Ptr != Inline)
      delete[] Ptr;
    Ptr = NewPtr;
    Cap = NewCap;
  }

  void copyFrom(const SparseBitSet &O) {
    if (O.Size > Cap)
      grow(O.Size);
    std::memcpy(Ptr, O.Ptr, O.Size * sizeof(Chunk));
    Size = O.Size;
    Cnt = O.Cnt;
  }

  /// Steals O's storage (heap) or copies its chunks (inline); O is left
  /// empty either way. Only called with this object's storage released.
  void moveFrom(SparseBitSet &O) noexcept {
    if (O.Ptr != O.Inline) {
      Ptr = O.Ptr;
      Cap = O.Cap;
    } else {
      Ptr = Inline;
      Cap = InlineCap;
      std::memcpy(Inline, O.Inline, O.Size * sizeof(Chunk));
    }
    Size = O.Size;
    Cnt = O.Cnt;
    O.Ptr = O.Inline;
    O.Cap = InlineCap;
    O.Size = 0;
    O.Cnt = 0;
  }

  Chunk *Ptr = Inline;  ///< Chunk storage; Inline until it outgrows it.
  uint32_t Size = 0;    ///< Populated chunks.
  uint32_t Cap = InlineCap;
  uint32_t Cnt = 0;     ///< Cached population count.
  Chunk Inline[InlineCap];
};

} // namespace taj

#endif // TAJ_POINTSTO_BITSET_H
