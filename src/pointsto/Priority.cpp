//===- pointsto/Priority.cpp -----------------------------------*- C++ -*-===//

#include "pointsto/Priority.h"

#include <cassert>

using namespace taj;

namespace {
constexpr uint64_t ArraySig = 1ull << 40;
constexpr uint64_t ChannelSig = 1ull << 41;
} // namespace

PriorityManager::PriorityManager(const Program &P, const CallGraph &CG,
                                 bool Prioritized)
    : P(P), CG(CG), Prioritized(Prioritized) {}

const PriorityManager::NameInfo &
PriorityManager::nameInfo(Symbol Name) const {
  if (NameCache.empty()) {
    for (const Method &M : P.Methods) {
      NameInfo &NI = NameCache[M.Name];
      NI.IsSource |= M.SourceRules != rules::None;
      NI.ChanStore |=
          M.Intr == Intrinsic::MapPut || M.Intr == Intrinsic::CollAdd;
      NI.ChanLoad |=
          M.Intr == Intrinsic::MapGet || M.Intr == Intrinsic::CollGet;
    }
  }
  static const NameInfo Empty;
  auto It = NameCache.find(Name);
  return It == NameCache.end() ? Empty : It->second;
}

const PriorityManager::FieldSets &
PriorityManager::fieldSets(MethodId M) const {
  auto It = FieldCache.find(M);
  if (It != FieldCache.end())
    return It->second;
  FieldSets FS;
  const Method &Meth = P.Methods[M];
  auto Add = [](std::vector<uint64_t> &V, uint64_t S) {
    for (uint64_t X : V)
      if (X == S)
        return;
    V.push_back(S);
  };
  for (const BasicBlock &BB : Meth.Blocks) {
    for (const Instruction &I : BB.Insts) {
      switch (I.Op) {
      case Opcode::Store:
      case Opcode::StaticStore:
        Add(FS.Stores, I.Field);
        break;
      case Opcode::Load:
      case Opcode::StaticLoad:
        Add(FS.Loads, I.Field);
        break;
      case Opcode::ArrayStore:
        Add(FS.Stores, ArraySig);
        break;
      case Opcode::ArrayLoad:
        Add(FS.Loads, ArraySig);
        break;
      case Opcode::Call: {
        // Match by callee name against the program's intrinsic models; a
        // precise receiver type is unnecessary for a priority heuristic.
        const NameInfo &NI = nameInfo(I.CalleeName);
        FS.CallsSource |= NI.IsSource;
        if (NI.ChanStore)
          Add(FS.Stores, ChannelSig);
        if (NI.ChanLoad)
          Add(FS.Loads, ChannelSig);
        break;
      }
      default:
        break;
      }
    }
  }
  return FieldCache.emplace(M, std::move(FS)).first->second;
}

uint64_t PriorityManager::keyOf(CGNodeId N) const {
  // Chaotic iteration processes pending nodes in no particular order;
  // a deterministic scramble of the creation sequence models that.
  return Prioritized ? Prio[N] : (Seq[N] * 0x9e3779b97f4a7c15ull) >> 32;
}

void PriorityManager::onNodeCreated(CGNodeId N) {
  assert(N == Prio.size() && "nodes must be registered in creation order");
  const FieldSets &FS = fieldSets(CG.node(N).M);
  uint64_t P0 = Prioritized && FS.CallsSource ? 0 : MaxPrio;
  Prio.push_back(P0);
  Seq.push_back(NextSeq++);
  Pending.push_back(true);
  ++NumPending;
  for (uint64_t Sig : FS.Loads)
    Loaders[Sig].push_back(N);
  Queue.push({keyOf(N), Seq[N], N});
}

CGNodeId PriorityManager::pop() {
  assert(NumPending > 0 && "pop on empty queue");
  while (true) {
    assert(!Queue.empty() && "pending node missing from heap");
    HeapEntry E = Queue.top();
    Queue.pop();
    // Live entry: the node is still pending and this entry carries its
    // current key (not one superseded by a relaxation).
    if (Pending[E.N] && E.Key == keyOf(E.N)) {
      Pending[E.N] = false;
      --NumPending;
      return E.N;
    }
  }
}

std::vector<CGNodeId> PriorityManager::nearby(CGNodeId N) const {
  std::vector<CGNodeId> Out;
  auto Add = [&](CGNodeId T) {
    if (T == N)
      return;
    for (CGNodeId X : Out)
      if (X == T)
        return;
    Out.push_back(T);
  };
  for (const CGEdge &E : CG.edges(N))
    Add(E.Callee);
  for (CGNodeId Pred : CG.preds(N))
    Add(Pred);
  // Nodes whose method loads a field this node's method stores (possible
  // heap flow: there will be a direct store->load HSDG edge).
  const FieldSets &FS = fieldSets(CG.node(N).M);
  for (uint64_t Sig : FS.Stores) {
    auto It = Loaders.find(Sig);
    if (It == Loaders.end())
      continue;
    for (CGNodeId T : It->second)
      Add(T);
  }
  return Out;
}

void PriorityManager::relax(CGNodeId N) {
  // Dijkstra-style propagation of the update rule
  // pi(t) := min(pi(t), pi(n) + 1) over the nearby relation, to fixpoint.
  std::vector<CGNodeId> Work = {N};
  size_t Steps = 0;
  while (!Work.empty() && Steps < 100000) {
    ++Steps;
    CGNodeId X = Work.back();
    Work.pop_back();
    uint64_t Cand = Prio[X] == MaxPrio ? MaxPrio : Prio[X] + 1;
    for (CGNodeId T : nearby(X)) {
      if (Prio[T] <= Cand)
        continue;
      Prio[T] = Cand;
      // Lazy decrease-key: the old entry stays in the heap and is
      // discarded at pop() because its key no longer matches.
      if (Pending[T])
        Queue.push({keyOf(T), Seq[T], T});
      Work.push_back(T);
    }
  }
}

void PriorityManager::onNodeProcessed(CGNodeId N) {
  if (!Prioritized)
    return;
  relax(N);
}
