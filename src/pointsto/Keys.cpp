//===- pointsto/Keys.cpp ---------------------------------------*- C++ -*-===//

#include "pointsto/Keys.h"

using namespace taj;

// Both interns are on the constraint-generation hot path: one probe chain
// over the open-addressed index resolves the hit and the miss, and a miss
// appends to the key vector without any per-entry node allocation.

IKId InstanceKeyTable::intern(const InstanceKeyData &D) {
  if (Index.needsGrow())
    Index.grow(Keys.size() + 1,
               [this](uint32_t I) { return Hash{}(Keys[I]); });
  size_t Slot;
  uint32_t Found = Index.find(
      Hash{}(D), [&](uint32_t I) { return Eq{}(Keys[I], D); }, Slot);
  if (Found != InvalidId)
    return Found;
  IKId Id = static_cast<IKId>(Keys.size());
  Index.insertAt(Slot, Id);
  Keys.push_back(D);
  return Id;
}

PKId PointerKeyTable::intern(const PointerKeyData &D) {
  if (Index.needsGrow())
    Index.grow(Keys.size() + 1,
               [this](uint32_t I) { return Hash{}(Keys[I]); });
  size_t Slot;
  uint32_t Found = Index.find(
      Hash{}(D), [&](uint32_t I) { return Eq{}(Keys[I], D); }, Slot);
  if (Found != InvalidId)
    return Found;
  PKId Id = static_cast<PKId>(Keys.size());
  Index.insertAt(Slot, Id);
  Keys.push_back(D);
  return Id;
}
