//===- pointsto/Keys.cpp ---------------------------------------*- C++ -*-===//

#include "pointsto/Keys.h"

using namespace taj;

IKId InstanceKeyTable::intern(const InstanceKeyData &D) {
  auto It = Map.find(D);
  if (It != Map.end())
    return It->second;
  Keys.push_back(D);
  IKId Id = static_cast<IKId>(Keys.size() - 1);
  Map.emplace(D, Id);
  return Id;
}

PKId PointerKeyTable::intern(const PointerKeyData &D) {
  auto It = Map.find(D);
  if (It != Map.end())
    return It->second;
  Keys.push_back(D);
  PKId Id = static_cast<PKId>(Keys.size() - 1);
  Map.emplace(D, Id);
  return Id;
}
