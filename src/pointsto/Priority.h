//===- pointsto/Priority.h - Priority-driven call-graph growth -*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The priority policy of TAJ §6.1. Constraint adding is driven by a
/// priority queue over pending call-graph nodes; the initial-assignment
/// rule gives taint-generating nodes priority 0 and everything else the
/// maximal value, and processing a node relaxes the priorities of its
/// "nearby" nodes (call-graph neighbours plus methods whose loads match its
/// stores) to fixpoint, implementing the locality-of-taint principle.
///
/// Deviation from the paper: TAJ's sources are library methods that become
/// call-graph nodes; our sources are inlined intrinsic models, so "source
/// node" here means "node whose method calls a source" (same locality
/// seed, one hop earlier).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_POINTSTO_PRIORITY_H
#define TAJ_POINTSTO_PRIORITY_H

#include "callgraph/CallGraph.h"
#include "ir/Program.h"

#include <queue>
#include <unordered_map>
#include <vector>

namespace taj {

/// Pending-node scheduler: FIFO (chaotic iteration) or priority-driven.
class PriorityManager {
public:
  /// \p Prioritized selects the §6.1 policy; false = chaotic (FIFO).
  PriorityManager(const Program &P, const CallGraph &CG, bool Prioritized);

  /// Registers a freshly created node and queues it (initial-assignment
  /// rule).
  void onNodeCreated(CGNodeId N);

  /// True if no node is pending.
  bool empty() const { return NumPending == 0; }

  /// Pops the next node to process (lowest priority value first;
  /// creation order breaks ties and is the sole key in chaotic mode).
  CGNodeId pop();

  /// Steps 2-5 of the §6.1 loop: computes the nearby set of \p N, relaxes
  /// priorities, and propagates changes to fixpoint.
  void onNodeProcessed(CGNodeId N);

  /// Current priority value of \p N.
  uint64_t priority(CGNodeId N) const { return Prio[N]; }

private:
  /// Nearby set: CG preds/succs of N plus nodes whose method contains a
  /// load matching a store in N's method.
  std::vector<CGNodeId> nearby(CGNodeId N) const;

  void relax(CGNodeId N);

  static constexpr uint64_t MaxPrio = ~0ull >> 1;

  const Program &P;
  const CallGraph &CG;
  bool Prioritized;
  std::vector<uint64_t> Prio;
  std::vector<uint64_t> Seq; // creation sequence, for deterministic ties
  uint64_t NextSeq = 0;
  /// The effective queue key of \p N right now; heap entries carrying a
  /// different key are stale.
  uint64_t keyOf(CGNodeId N) const;
  /// Binary min-heap over (key, seq, node) with lazy decrease-key: a
  /// relaxation pushes a fresh entry and pop() discards entries whose key
  /// no longer matches keyOf(). Keys only decrease, so the first live
  /// entry popped is the same (key, seq)-minimum the old ordered-set
  /// implementation produced — at O(log n) push instead of rebalancing an
  /// RB-tree on every erase/insert pair.
  struct HeapEntry {
    uint64_t Key;
    uint64_t Seq;
    CGNodeId N;
  };
  struct HeapCmp {
    bool operator()(const HeapEntry &A, const HeapEntry &B) const {
      // std::priority_queue surfaces the "largest"; invert for a min-heap.
      if (A.Key != B.Key)
        return A.Key > B.Key;
      return A.Seq > B.Seq;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp> Queue;
  size_t NumPending = 0;
  std::vector<bool> Pending;

  // Static per-method field footprints.
  struct FieldSets {
    std::vector<uint64_t> Stores;
    std::vector<uint64_t> Loads;
    bool CallsSource = false;
  };
  const FieldSets &fieldSets(MethodId M) const;
  mutable std::unordered_map<MethodId, FieldSets> FieldCache;

  /// Cached per-callee-name classification (source? channel store/load?).
  struct NameInfo {
    bool IsSource = false;
    bool ChanStore = false;
    bool ChanLoad = false;
  };
  const NameInfo &nameInfo(Symbol Name) const;
  mutable std::unordered_map<Symbol, NameInfo> NameCache;
  // field signature -> nodes whose method loads it
  mutable std::unordered_map<uint64_t, std::vector<CGNodeId>> Loaders;
};

} // namespace taj

#endif // TAJ_POINTSTO_PRIORITY_H
