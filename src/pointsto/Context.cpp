//===- pointsto/Context.cpp ------------------------------------*- C++ -*-===//

#include "pointsto/Context.h"

// ContextTable is header-only; this TU anchors the library.
