//===- pointsto/ContextPolicy.cpp ------------------------------*- C++ -*-===//

#include "pointsto/ContextPolicy.h"

using namespace taj;

CtxId ContextPolicy::selectCalleeContext(const Method &Callee, StmtId Site,
                                         IKId RecvIK) {
  // Taint-specific APIs and library factories: 1-level call-string. This is
  // what lets TAJ disambiguate the two getParameter calls of the motivating
  // example even though they share a receiver.
  if (Callee.isTaintApi() || Callee.IsFactory)
    return Ctxs.callSite(Site);

  if (RecvIK == InvalidId)
    return EverywhereCtx; // plain static call

  // Object sensitivity: context = receiver abstraction. The receiver key
  // already encodes its heap context, so collection-internal objects carry
  // the full receiver chain; the depth guard bounds recursion.
  const InstanceKeyData &IK = IKs.data(RecvIK);
  uint32_t HeapDepth = Ctxs.depth(IK.Heap);
  if (HeapDepth + 1 > Opts.MaxCtxDepth)
    return EverywhereCtx;
  return Ctxs.receiver(RecvIK, HeapDepth);
}

CtxId ContextPolicy::heapContextForAlloc(const Method &In, CtxId AllocCtx) {
  // Collections clone their internal objects per collection instance
  // (unlimited-depth object sensitivity, §3.1). Everything else uses the
  // allocation-site abstraction (heap context dropped), which is the
  // standard 1-object-sensitive heap.
  if (P.Classes[In.Owner].is(classflags::Collection))
    return AllocCtx;
  return EverywhereCtx;
}
