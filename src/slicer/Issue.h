//===- slicer/Issue.h - Reported taint flows -------------------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result vocabulary shared by the three thin slicers: an Issue is one
/// source-to-sink tainted flow (TAJ §3), and a SliceRunResult is the output
/// of one slicing configuration (CS thin slicing may fail to complete,
/// mirroring its out-of-memory rows in Table 3).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SLICER_ISSUE_H
#define TAJ_SLICER_ISSUE_H

#include "ir/Program.h"

#include <vector>

namespace taj {

/// One reported tainted flow.
struct Issue {
  StmtId Source = 0;
  StmtId Sink = 0;
  RuleMask Rule = rules::None;
  /// Number of dependence edges on the discovered path (flow length,
  /// §6.2.2).
  uint32_t Length = 0;
  /// Statement path from source to sink (used by LCP report grouping).
  std::vector<StmtId> Path;

  bool operator<(const Issue &O) const {
    return std::tie(Source, Sink, Rule) < std::tie(O.Source, O.Sink, O.Rule);
  }
  bool operator==(const Issue &O) const {
    return Source == O.Source && Sink == O.Sink && Rule == O.Rule;
  }
};

/// Output of one slicer run.
struct SliceRunResult {
  /// False when the configuration could not complete (CS channel-extension
  /// memory budget exceeded).
  bool Completed = true;
  std::vector<Issue> Issues;
  /// Work metric (tabulation path edges / BFS visits).
  uint64_t PathEdges = 0;
};

} // namespace taj

#endif // TAJ_SLICER_ISSUE_H
