//===- slicer/HeapEdges.h - Direct store->load & carrier edges -*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-insensitive heap edges of the HSDG (TAJ §3.2 and §4.1.1):
///
///  - direct edges from a store to every load whose base pointer may alias
///    the store's base (per the preliminary pointer analysis), with
///    constant-key filtering for dictionary channels;
///  - taint-carrier edges from a store to every sink one of whose
///    sensitive actuals may reach the stored-into object in the heap graph
///    within the nested-taint depth bound (§6.2.3).
///
/// The full store adjacency is materialized at construction time, before
/// slicing begins; afterwards the object is immutable and loadsFor() /
/// carrierSinksFor() are plain const lookups, safe for any number of
/// concurrent slicing workers. A governed instance (non-null \p Guard)
/// checkpoints per indexed load/sink and per materialized store; after a
/// cutoff the remaining stores serve empty adjacency, which only removes
/// heap hops from slices (underapproximate).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SLICER_HEAPEDGES_H
#define TAJ_SLICER_HEAPEDGES_H

#include "heapgraph/HeapGraph.h"
#include "sdg/SDG.h"

#include <unordered_map>
#include <vector>

namespace taj {

namespace persist {
struct Access;
}

/// Immutable heap adjacency for one (SDG, solver) pair.
class HeapEdges {
public:
  HeapEdges(const Program &P, const SDG &G, const PointsToSolver &Solver,
            const HeapGraph &HG, uint32_t NestedDepth,
            RunGuard *Guard = nullptr);

  /// Loads that may read what \p Store wrote.
  const std::vector<SDGNodeId> &loadsFor(SDGNodeId Store) const;

  /// Sinks whose sensitive arguments may reach the object \p Store wrote
  /// into (nested taint, §4.1.1).
  const std::vector<SDGNodeId> &carrierSinksFor(SDGNodeId Store) const;

private:
  /// Test-only corruption hooks (tests/verify_test.cpp).
  friend class HeapEdgesTestPeer;
  /// Serialization (persist/Serialize.cpp) snapshots and restores the
  /// materialized store adjacency through the tag constructor below.
  friend struct persist::Access;

  /// Restore-path constructor: binds the live references but materializes
  /// nothing; persist::Access fills Stores from a cache record (the
  /// build-only load indices stay empty — they are never read after
  /// construction).
  struct RestoreTag {};
  HeapEdges(const Program &P, const SDG &G, const PointsToSolver &Solver,
            const HeapGraph &HG, uint32_t NestedDepth, RestoreTag)
      : P(P), G(G), Solver(Solver), HG(HG), NestedDepth(NestedDepth) {}

  struct StoreInfo {
    std::vector<SDGNodeId> Loads;
    std::vector<SDGNodeId> CarrierSinks;
  };
  /// Build-time only: materializes the adjacency of one store.
  void computeStore(SDGNodeId Store, RunGuard *Guard);

  const std::vector<IKId> &baseIKs(SDGNodeId Node) const;
  /// Constant key of a map access (SDG::constKeyOf): channels with
  /// distinct resolved keys never connect, so dictionary precision here
  /// follows the --string-analysis mode.
  Symbol mapKeyOf(SDGNodeId Node) const;

  const Program &P;
  const SDG &G;
  const PointsToSolver &Solver;
  const HeapGraph &HG;
  uint32_t NestedDepth;

  struct LoadInfo {
    SDGNodeId Node;
    HeapAccess Access;
    FieldId Field;
    Symbol MapKey; ///< ~0u = non-constant key
    std::vector<IKId> BaseIKs;
  };
  std::vector<LoadInfo> FieldLoads, StaticLoads, ArrayLoads, MapGets,
      CollGets;
  std::unordered_map<IKId, std::vector<SDGNodeId>> IkToSinks;
  std::unordered_map<SDGNodeId, StoreInfo> Stores;
};

} // namespace taj

#endif // TAJ_SLICER_HEAPEDGES_H
