//===- slicer/CSThinSlicer.cpp - context-sensitive baseline ----*- C++ -*-===//

#include "persist/Cache.h"
#include "rhs/Tabulation.h"
#include "slicer/HeapEdges.h"
#include "slicer/Slicer.h"
#include "slicer/SlicerCommon.h"
#include "support/RunGuard.h"
#include "support/Trace.h"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>

using namespace taj;
using slicer_detail::SliceItem;

namespace {

/// Worker-private state: one memoized Tabulation per rule (see the hybrid
/// slicer for the rationale).
struct CsWorkerState {
  std::array<std::unique_ptr<Tabulation>, rules::NumRules> Tabs;

  Tabulation &tab(const SDG &G, int RuleBit, RunGuard *Guard) {
    auto &T = Tabs[RuleBit];
    if (!T)
      T = std::make_unique<Tabulation>(
          G, static_cast<RuleMask>(1u << RuleBit), Guard);
    return *T;
  }
};

void sliceOneCs(const SDG &G, const HeapEdges &HE, Tabulation &Tab,
                const SliceItem &It, const SlicerOptions &Opts,
                std::vector<Issue> &Buf) {
  RuleMask Rule = static_cast<RuleMask>(1u << It.RuleBit);
  SDGNodeId Src = It.Src;
  const std::unordered_map<SDGNodeId, SDGNodeId> NoHops;
  Tabulation::SliceResult R;
  Tab.forwardSlice({{Src, 0}}, R);

  auto Record = [&](SDGNodeId Sk, uint32_t Len, SDGNodeId PathFrom) {
    if (Opts.MaxFlowLength != 0 && Len > Opts.MaxFlowLength)
      return;
    Issue Iss;
    Iss.Source = G.node(Src).S;
    Iss.Sink = G.node(Sk).S;
    Iss.Rule = Rule;
    Iss.Length = Len;
    Iss.Path =
        slicer_detail::reconstructPath(G, R.Parent, NoHops, PathFrom, Sk);
    Buf.push_back(std::move(Iss));
  };

  for (SDGNodeId Sk : G.sinkNodes()) {
    if (!(G.node(Sk).SinkMask & Rule))
      continue;
    auto DIt = R.Dist.find(Sk);
    if (DIt != R.Dist.end())
      Record(Sk, DIt->second, Sk);
  }
  // Nested taint via carrier edges at reached stores.
  for (SDGNodeId St : G.storeNodes()) {
    auto DIt = R.Dist.find(St);
    if (DIt == R.Dist.end())
      continue;
    for (SDGNodeId Sk : HE.carrierSinksFor(St))
      if (G.node(Sk).SinkMask & Rule)
        Record(Sk, DIt->second + 1, St);
  }
}

} // namespace

SliceRunResult taj::runCsSlicer(const Program &P, const ClassHierarchy &CHA,
                                const PointsToSolver &Solver,
                                const SlicerOptions &Opts) {
  RunGuard *Guard = Opts.Guard;
  if (Guard)
    Guard->beginPhase(RunPhase::SdgBuild);
  SDGOptions SO;
  SO.Guard = Guard;
  SO.ContextExpanded = true;
  SO.WithChanParams = true;
  SO.ModelExceptionSources = Opts.ModelExceptionSources;
  SO.ChanNodeBudget = Opts.CsChanBudget;
  SO.Profile = Opts.Profile;
  std::optional<persist::SdgArtifacts> A;
  {
    PhaseScope PS(Opts.Profile, "sdg");
    A.emplace(persist::loadOrBuildSdg(P, CHA, Solver, SO,
                                      Opts.NestedTaintDepth, Opts.Cache,
                                      Opts.CacheKey));
  }
  const SDG &G = *A->G;

  SliceRunResult Out;
  if (G.chanBudgetExceeded()) {
    // The channel extension exhausted memory: the configuration fails on
    // this input, as CS thin slicing does on TAJ's larger benchmarks.
    Out.Completed = false;
    return Out;
  }

  const HeapEdges &HE = *A->HE;
  slicer_detail::verifySdgPhase(P, G, &HE, Solver, Opts, A->FromCache);

  if (Guard)
    Guard->beginPhase(RunPhase::Slicing);
  PhaseScope PS(Opts.Profile, "slicing");
  std::vector<SliceItem> Items = slicer_detail::collectSliceItems(G);
  slicer_detail::runSliceItems(
      Opts.Threads, Items, Guard, Out, [] { return CsWorkerState(); },
      [&](CsWorkerState &WS, const SliceItem &It, std::vector<Issue> &Buf,
          uint64_t &PathEdges) {
        Tabulation &Tab = WS.tab(G, It.RuleBit, Guard);
        uint64_t Before = Tab.pathEdgeCount();
        sliceOneCs(G, HE, Tab, It, Opts, Buf);
        PathEdges += Tab.pathEdgeCount() - Before;
      });
  slicer_detail::verifyWitnessPhase(G, &HE, Out, Opts);
  return Out;
}
