//===- slicer/CSThinSlicer.cpp - context-sensitive baseline ----*- C++ -*-===//

#include "rhs/Tabulation.h"
#include "slicer/HeapEdges.h"
#include "slicer/Slicer.h"
#include "slicer/SlicerCommon.h"
#include "support/RunGuard.h"

#include <algorithm>
#include <set>

using namespace taj;

SliceRunResult taj::runCsSlicer(const Program &P, const ClassHierarchy &CHA,
                                const PointsToSolver &Solver,
                                const SlicerOptions &Opts) {
  RunGuard *Guard = Opts.Guard;
  if (Guard)
    Guard->beginPhase(RunPhase::SdgBuild);
  SDGOptions SO;
  SO.Guard = Guard;
  SO.ContextExpanded = true;
  SO.WithChanParams = true;
  SO.ModelExceptionSources = Opts.ModelExceptionSources;
  SO.ChanNodeBudget = Opts.CsChanBudget;
  SDG G(P, CHA, Solver, SO);

  SliceRunResult Out;
  if (G.chanBudgetExceeded()) {
    // The channel extension exhausted memory: the configuration fails on
    // this input, as CS thin slicing does on TAJ's larger benchmarks.
    Out.Completed = false;
    return Out;
  }

  HeapGraph HG(Solver);
  HeapEdges HE(P, G, Solver, HG, Opts.NestedTaintDepth, Guard);
  std::set<Issue> Dedup;
  const std::unordered_map<SDGNodeId, SDGNodeId> NoHops;

  if (Guard)
    Guard->beginPhase(RunPhase::Slicing);
  for (int RB = 0; RB < rules::NumRules; ++RB) {
    if (Guard && Guard->stopped())
      break; // cutoff: report what earlier rules found
    RuleMask Rule = static_cast<RuleMask>(1u << RB);
    Tabulation Tab(G, Rule, Guard);
    for (SDGNodeId Src : G.sourceNodes(Rule)) {
      if (Guard && !Guard->checkpoint())
        break;
      Tabulation::SliceResult R;
      Tab.forwardSlice({{Src, 0}}, R);

      auto Record = [&](SDGNodeId Sk, uint32_t Len, SDGNodeId PathFrom) {
        if (Opts.MaxFlowLength != 0 && Len > Opts.MaxFlowLength)
          return;
        Issue Iss;
        Iss.Source = G.node(Src).S;
        Iss.Sink = G.node(Sk).S;
        Iss.Rule = Rule;
        Iss.Length = Len;
        Iss.Path =
            slicer_detail::reconstructPath(G, R.Parent, NoHops, PathFrom, Sk);
        if (Dedup.insert(Iss).second)
          Out.Issues.push_back(std::move(Iss));
      };

      for (SDGNodeId Sk : G.sinkNodes()) {
        if (!(G.node(Sk).SinkMask & Rule))
          continue;
        auto DIt = R.Dist.find(Sk);
        if (DIt != R.Dist.end())
          Record(Sk, DIt->second, Sk);
      }
      // Nested taint via carrier edges at reached stores.
      for (SDGNodeId St : G.storeNodes()) {
        auto DIt = R.Dist.find(St);
        if (DIt == R.Dist.end())
          continue;
        for (SDGNodeId Sk : HE.carrierSinksFor(St))
          if (G.node(Sk).SinkMask & Rule)
            Record(Sk, DIt->second + 1, St);
      }
    }
    Out.PathEdges += Tab.pathEdgeCount();
  }
  std::sort(Out.Issues.begin(), Out.Issues.end());
  return Out;
}
