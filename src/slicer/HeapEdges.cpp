//===- slicer/HeapEdges.cpp ------------------------------------*- C++ -*-===//

#include "slicer/HeapEdges.h"
#include "support/RunGuard.h"

#include <algorithm>

using namespace taj;

static bool intersects(const std::vector<IKId> &A,
                       const std::vector<IKId> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] == B[J])
      return true;
    if (A[I] < B[J])
      ++I;
    else
      ++J;
  }
  return false;
}

const std::vector<IKId> &HeapEdges::baseIKs(SDGNodeId Node) const {
  return G.basePointsTo(Node);
}

Symbol HeapEdges::mapKeyOf(SDGNodeId Node) const { return G.constKeyOf(Node); }

HeapEdges::HeapEdges(const Program &P, const SDG &G,
                     const PointsToSolver &Solver, const HeapGraph &HG,
                     uint32_t NestedDepth, RunGuard *Guard)
    : P(P), G(G), Solver(Solver), HG(HG), NestedDepth(NestedDepth) {
  // Index all loads by access class.
  for (SDGNodeId L : G.loadNodes()) {
    if (Guard && !Guard->checkpoint())
      return; // cutoff: unindexed loads simply lose their heap hops
    const SDGNode &N = G.node(L);
    LoadInfo LI;
    LI.Node = L;
    LI.Access = N.Access;
    LI.Field = P.stmt(N.S).Field;
    LI.MapKey = ~0u;
    switch (N.Access) {
    case HeapAccess::FieldLoad:
      LI.BaseIKs = baseIKs(L);
      FieldLoads.push_back(std::move(LI));
      break;
    case HeapAccess::StaticLoad:
      StaticLoads.push_back(std::move(LI));
      break;
    case HeapAccess::ArrayLoad:
    case HeapAccess::InvokeArgsRead:
      LI.BaseIKs = baseIKs(L);
      ArrayLoads.push_back(std::move(LI));
      break;
    case HeapAccess::MapGet:
      LI.BaseIKs = baseIKs(L);
      LI.MapKey = mapKeyOf(L);
      MapGets.push_back(std::move(LI));
      break;
    case HeapAccess::CollGet:
      LI.BaseIKs = baseIKs(L);
      CollGets.push_back(std::move(LI));
      break;
    default:
      break;
    }
  }
  // Invert sink-argument heap reachability: ik -> sinks whose sensitive
  // actuals reach it within the nested-taint depth (§4.1.1 steps 1-2).
  for (SDGNodeId SkNode : G.sinkNodes()) {
    if (Guard && !Guard->checkpoint())
      return; // cutoff: remaining sinks get no carrier edges
    const SDGNode &N = G.node(SkNode);
    const Instruction &I = P.stmt(N.S);
    uint32_t Mask = 0;
    for (MethodId T : Solver.intrinsicCalleesAt(N.S))
      if (P.Methods[T].SinkRules)
        Mask |= P.Methods[T].SinkParamMask;
    for (MethodId T : Solver.callGraph().calleesAt(N.S))
      if (P.Methods[T].SinkRules)
        Mask |= P.Methods[T].SinkParamMask;
    std::vector<IKId> ArgIKs;
    for (uint32_t K = 0; K < I.Args.size(); ++K) {
      if (!(Mask & (1u << K)))
        continue;
      for (IKId IK : G.argPointsTo(SkNode, K))
        ArgIKs.push_back(IK);
    }
    std::sort(ArgIKs.begin(), ArgIKs.end());
    ArgIKs.erase(std::unique(ArgIKs.begin(), ArgIKs.end()), ArgIKs.end());
    // A store whose base sits at heap depth d puts the data at dereference
    // depth d+1, so the base must lie within NestedDepth-1 (§6.2.3).
    if (NestedDepth == 0)
      continue;
    for (IKId IK : HG.reachable(ArgIKs, NestedDepth - 1))
      IkToSinks[IK].push_back(SkNode);
  }
  // Materialize every store's adjacency now, while still single-threaded:
  // slicing workers must only ever read this object.
  for (SDGNodeId St : G.storeNodes())
    computeStore(St, Guard);
}

void HeapEdges::computeStore(SDGNodeId Store, RunGuard *Guard) {
  StoreInfo &SI = Stores[Store];
  if (Guard && !Guard->checkpoint())
    return; // cutoff: this store contributes no heap edges

  const SDGNode &N = G.node(Store);
  const Instruction &I = P.stmt(N.S);
  auto AddCarriers = [&](const std::vector<IKId> &Base) {
    for (IKId IK : Base) {
      auto SIt = IkToSinks.find(IK);
      if (SIt != IkToSinks.end())
        for (SDGNodeId Sk : SIt->second)
          SI.CarrierSinks.push_back(Sk);
    }
  };
  switch (N.Access) {
  case HeapAccess::StaticStore: {
    for (const LoadInfo &L : StaticLoads)
      if (L.Field == I.Field)
        SI.Loads.push_back(L.Node);
    return; // statics have no base object: no carrier edges
  }
  case HeapAccess::FieldStore: {
    const std::vector<IKId> &Base = baseIKs(Store);
    for (const LoadInfo &L : FieldLoads)
      if (L.Field == I.Field && intersects(Base, L.BaseIKs))
        SI.Loads.push_back(L.Node);
    AddCarriers(Base);
    break;
  }
  case HeapAccess::ArrayStore: {
    const std::vector<IKId> &Base = baseIKs(Store);
    for (const LoadInfo &L : ArrayLoads)
      if (intersects(Base, L.BaseIKs))
        SI.Loads.push_back(L.Node);
    AddCarriers(Base);
    break;
  }
  case HeapAccess::MapPut: {
    const std::vector<IKId> &Base = baseIKs(Store);
    Symbol PutKey = mapKeyOf(Store);
    for (const LoadInfo &L : MapGets) {
      bool KeyCompat =
          PutKey == ~0u || L.MapKey == ~0u || PutKey == L.MapKey;
      if (KeyCompat && intersects(Base, L.BaseIKs))
        SI.Loads.push_back(L.Node);
    }
    AddCarriers(Base);
    break;
  }
  case HeapAccess::CollAdd: {
    const std::vector<IKId> &Base = baseIKs(Store);
    for (const LoadInfo &L : CollGets)
      if (intersects(Base, L.BaseIKs))
        SI.Loads.push_back(L.Node);
    AddCarriers(Base);
    break;
  }
  default:
    break;
  }
  std::sort(SI.CarrierSinks.begin(), SI.CarrierSinks.end());
  SI.CarrierSinks.erase(
      std::unique(SI.CarrierSinks.begin(), SI.CarrierSinks.end()),
      SI.CarrierSinks.end());
}

static const std::vector<SDGNodeId> EmptyAdjacency;

const std::vector<SDGNodeId> &HeapEdges::loadsFor(SDGNodeId Store) const {
  auto It = Stores.find(Store);
  return It == Stores.end() ? EmptyAdjacency : It->second.Loads;
}

const std::vector<SDGNodeId> &
HeapEdges::carrierSinksFor(SDGNodeId Store) const {
  auto It = Stores.find(Store);
  return It == Stores.end() ? EmptyAdjacency : It->second.CarrierSinks;
}
