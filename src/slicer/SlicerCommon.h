//===- slicer/SlicerCommon.h - Shared slicer helpers -----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the three slicer implementations: flow-path
/// reconstruction for LCP report grouping, and the parallel per-source
/// slicing engine (work-item collection, worker fan-out, deterministic
/// merge).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SLICER_SLICERCOMMON_H
#define TAJ_SLICER_SLICERCOMMON_H

#include "persist/Cache.h"
#include "sdg/SDG.h"
#include "slicer/Issue.h"
#include "slicer/Slicer.h"
#include "support/Parallel.h"
#include "support/RunGuard.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

namespace taj {
namespace slicer_detail {

/// Runs the SDG/heap checkers right after the graph bundle is ready (cold
/// build or warm restore). No-op unless verification is on and the build
/// completed without a governance stop — a truncated graph is deliberately
/// partial, not inconsistent. Under --verify=full a violating warm restore
/// additionally counts as a rejected persisted artifact (the hot MemCache
/// tier skips the record checksum, so this is the only guard it has) and
/// the poisoned cache entry is dropped for later runs.
inline void verifySdgPhase(const Program &P, const SDG &G,
                           const HeapEdges *HE, const PointsToSolver &Solver,
                           const SlicerOptions &Opts, bool FromCache) {
  if (Opts.Verify == verify::VerifyMode::Off || !Opts.Violations)
    return;
  if (Opts.Guard && Opts.Guard->stopped())
    return;
  const uint64_t Before = Opts.Violations->total();
  verify::verifySdg(P, G, HE, Solver, Opts.Verify, *Opts.Violations);
  if (FromCache && Opts.Verify == verify::VerifyMode::Full &&
      Opts.Violations->total() != Before) {
    Opts.Violations->noteRestoreRejected();
    if (Opts.Cache)
      Opts.Cache->noteRestoreFailure(Opts.CacheKey);
  }
}

/// Replays every reported issue as a connected HSDG witness path after the
/// slicing loops finish. Skipped when slicing was cut short: the issue
/// list is then a pure function of the completed items, but the distances
/// a fresh replay finds need not match what a truncated traversal saw.
inline void verifyWitnessPhase(const SDG &G, const HeapEdges *HE,
                               const SliceRunResult &Out,
                               const SlicerOptions &Opts) {
  if (Opts.Verify == verify::VerifyMode::Off || !Opts.Violations)
    return;
  if (Opts.Guard && Opts.Guard->stopped())
    return;
  verify::verifyWitnesses(G, HE, Out.Issues, *Opts.Violations);
}

/// Walks discovery parents from \p From back to a seed, collecting the
/// statement path in source-to-sink order; \p Sink is appended when the
/// walk starts elsewhere (taint-carrier flows end at the sink directly).
/// \p HopParent supplies store->load hop links not present in \p Parent.
inline std::vector<StmtId>
reconstructPath(const SDG &G,
                const std::unordered_map<SDGNodeId, SDGNodeId> &Parent,
                const std::unordered_map<SDGNodeId, SDGNodeId> &HopParent,
                SDGNodeId From, SDGNodeId Sink) {
  std::vector<StmtId> Rev;
  if (Sink != From && G.node(Sink).Kind == SDGNodeKind::Stmt)
    Rev.push_back(G.node(Sink).S);
  SDGNodeId Cur = From;
  size_t Guard = 0;
  while (Cur != InvalidId && Guard++ < 4096) {
    const SDGNode &N = G.node(Cur);
    StmtId S = ~0u;
    if (N.Kind == SDGNodeKind::Stmt)
      S = N.S;
    else if ((N.Kind == SDGNodeKind::ActualIn ||
              N.Kind == SDGNodeKind::ChanActualIn) &&
             N.Aux != InvalidId)
      S = G.node(N.Aux).S; // record the call site the flow entered through
    if (S != ~0u && (Rev.empty() || Rev.back() != S))
      Rev.push_back(S);
    SDGNodeId Next = InvalidId;
    auto PIt = Parent.find(Cur);
    if (PIt != Parent.end() && PIt->second != InvalidId) {
      Next = PIt->second;
    } else {
      auto HIt = HopParent.find(Cur);
      if (HIt != HopParent.end())
        Next = HIt->second;
    }
    Cur = Next;
  }
  std::reverse(Rev.begin(), Rev.end());
  return Rev;
}

//===----------------------------------------------------------------------===//
// Parallel per-source slicing engine
//===----------------------------------------------------------------------===//
//
// All three slicers share the same outer shape: after the SDG / heap-edge
// build, a strictly read-only traversal runs per (rule, source) pair. The
// engine below fans those pairs out across a pool of workers and merges
// the per-item issue buffers back into the exact sequence the sequential
// rule-major loops would have produced:
//
//  - items are collected rule-major (rule bit outer, sourceNodes() order
//    inner), matching the sequential iteration order;
//  - worker w statically takes items w, w+T, w+2T, ... and appends each
//    item's issues — every Record attempt surviving the flow-length
//    filter, in discovery order — to a buffer private to that item;
//  - the merge walks items in sequential order through one dedup set
//    (first occurrence wins, as in the sequential loops) and finally
//    sorts, so the output is byte-identical at every thread count;
//  - under a guard cutoff, an item contributes only if it completed before
//    the stop (worker-completion semantics): a worker observing the stop
//    mid-item discards that item's buffer. Partial runs therefore stay
//    strictly underapproximate, and the merged output is a pure function
//    of the set of completed items.

/// One unit of slicing work: one taint source under one security rule.
struct SliceItem {
  int RuleBit = 0;
  SDGNodeId Src = InvalidId;
};

/// Collects the (rule, source) items in the sequential rule-major order.
inline std::vector<SliceItem> collectSliceItems(const SDG &G) {
  std::vector<SliceItem> Items;
  for (int RB = 0; RB < rules::NumRules; ++RB)
    for (SDGNodeId Src : G.sourceNodes(static_cast<RuleMask>(1u << RB)))
      Items.push_back({RB, Src});
  return Items;
}

/// Fans \p Items across \p Threads workers and merges deterministically.
///
/// \p MakeState builds one worker-private state object (e.g. the lazily
/// created per-rule Tabulations); \p Slice runs one item:
///   Slice(State &, const SliceItem &, std::vector<Issue> &Buf,
///         uint64_t &PathEdges)
/// appending the item's issues (in discovery order, duplicates included)
/// to Buf and adding the item's traversal work to PathEdges.
template <class MakeStateFn, class SliceFn>
void runSliceItems(uint32_t Threads, const std::vector<SliceItem> &Items,
                   RunGuard *Guard, SliceRunResult &Out,
                   MakeStateFn MakeState, SliceFn Slice) {
  unsigned W = resolveThreadCount(Threads);
  if (W > Items.size() && !Items.empty())
    W = static_cast<unsigned>(Items.size());
  if (W == 0)
    W = 1;

  using StateT = decltype(MakeState());
  std::vector<StateT> States;
  States.reserve(W);
  for (unsigned K = 0; K < W; ++K)
    States.push_back(MakeState());
  std::vector<std::vector<Issue>> Buffers(Items.size());
  std::vector<char> Completed(Items.size(), 0);
  std::vector<uint64_t> Edges(W, 0);

  parallelForInterleaved(W, Items.size(), [&](unsigned Worker, size_t I) {
    // One checkpoint per item, as in the sequential per-source loops; a
    // failing checkpoint (or an already-stopped guard) skips the item.
    if (Guard && !Guard->checkpoint())
      return;
    Slice(States[Worker], Items[I], Buffers[I], Edges[Worker]);
    if (Guard && Guard->stopped()) {
      Buffers[I].clear(); // discard the in-flight partial: underapproximate
      return;
    }
    Completed[I] = 1;
  });

  // Deterministic merge: sequential item order through one dedup set
  // (first occurrence keeps its Length/Path), then the final sort.
  std::set<Issue> Dedup;
  for (size_t I = 0; I < Items.size(); ++I) {
    if (!Completed[I])
      continue;
    for (Issue &Iss : Buffers[I])
      if (Dedup.insert(Iss).second)
        Out.Issues.push_back(std::move(Iss));
  }
  for (uint64_t E : Edges)
    Out.PathEdges += E;
  std::sort(Out.Issues.begin(), Out.Issues.end());
}

} // namespace slicer_detail
} // namespace taj

#endif // TAJ_SLICER_SLICERCOMMON_H
