//===- slicer/SlicerCommon.h - Shared slicer helpers -----------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the three slicer implementations (flow-path
/// reconstruction for LCP report grouping).
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SLICER_SLICERCOMMON_H
#define TAJ_SLICER_SLICERCOMMON_H

#include "sdg/SDG.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace taj {
namespace slicer_detail {

/// Walks discovery parents from \p From back to a seed, collecting the
/// statement path in source-to-sink order; \p Sink is appended when the
/// walk starts elsewhere (taint-carrier flows end at the sink directly).
/// \p HopParent supplies store->load hop links not present in \p Parent.
inline std::vector<StmtId>
reconstructPath(const SDG &G,
                const std::unordered_map<SDGNodeId, SDGNodeId> &Parent,
                const std::unordered_map<SDGNodeId, SDGNodeId> &HopParent,
                SDGNodeId From, SDGNodeId Sink) {
  std::vector<StmtId> Rev;
  if (Sink != From && G.node(Sink).Kind == SDGNodeKind::Stmt)
    Rev.push_back(G.node(Sink).S);
  SDGNodeId Cur = From;
  size_t Guard = 0;
  while (Cur != InvalidId && Guard++ < 4096) {
    const SDGNode &N = G.node(Cur);
    StmtId S = ~0u;
    if (N.Kind == SDGNodeKind::Stmt)
      S = N.S;
    else if ((N.Kind == SDGNodeKind::ActualIn ||
              N.Kind == SDGNodeKind::ChanActualIn) &&
             N.Aux != InvalidId)
      S = G.node(N.Aux).S; // record the call site the flow entered through
    if (S != ~0u && (Rev.empty() || Rev.back() != S))
      Rev.push_back(S);
    SDGNodeId Next = InvalidId;
    auto PIt = Parent.find(Cur);
    if (PIt != Parent.end() && PIt->second != InvalidId) {
      Next = PIt->second;
    } else {
      auto HIt = HopParent.find(Cur);
      if (HIt != HopParent.end())
        Next = HIt->second;
    }
    Cur = Next;
  }
  std::reverse(Rev.begin(), Rev.end());
  return Rev;
}

} // namespace slicer_detail
} // namespace taj

#endif // TAJ_SLICER_SLICERCOMMON_H
