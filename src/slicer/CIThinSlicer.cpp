//===- slicer/CIThinSlicer.cpp - context-insensitive baseline --*- C++ -*-===//

#include "persist/Cache.h"
#include "slicer/HeapEdges.h"
#include "slicer/Slicer.h"
#include "slicer/SlicerCommon.h"
#include "support/RunGuard.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <deque>
#include <optional>

using namespace taj;
using slicer_detail::SliceItem;

namespace {

/// Plain BFS from one source: every SDG edge is followed with no
/// call/return matching, plus direct store->load heap edges — CI thin
/// slicing. Store->load expansion is metered by the §6.2.1 heap budget,
/// exactly as in the hybrid slicer; taint-carrier recording is not.
void sliceOneCi(const SDG &G, const HeapEdges &HE, const SliceItem &It,
                const SlicerOptions &Opts, RunGuard *Guard,
                std::vector<Issue> &Buf, uint64_t &Edges) {
  RuleMask Rule = static_cast<RuleMask>(1u << It.RuleBit);
  SDGNodeId Src = It.Src;
  Budget HeapBudget(Opts.MaxHeapTransitions);
  std::unordered_map<SDGNodeId, uint32_t> Dist;
  std::unordered_map<SDGNodeId, SDGNodeId> Parent;
  std::unordered_map<SDGNodeId, std::pair<SDGNodeId, uint32_t>> Carrier;
  std::deque<SDGNodeId> Q;
  Dist[Src] = 0;
  Parent[Src] = InvalidId;
  Q.push_back(Src);
  while (!Q.empty()) {
    if (Guard && !Guard->checkpoint())
      break; // cutoff: the caller discards this in-flight item
    SDGNodeId N = Q.front();
    Q.pop_front();
    ++Edges;
    uint32_t D = Dist[N];
    const SDGNode &Node = G.node(N);
    bool Barrier = Node.Kind == SDGNodeKind::Stmt &&
                   ((Node.SanitizeMask & Rule) || (Node.SinkMask & Rule));
    if (!Barrier) {
      for (const SDGEdge &E : G.succs(N)) {
        if (!Dist.count(E.To)) {
          Dist[E.To] = D + 1;
          Parent[E.To] = N;
          Q.push_back(E.To);
        }
      }
      // Heap hops at stores.
      switch (Node.Access) {
      case HeapAccess::FieldStore:
      case HeapAccess::ArrayStore:
      case HeapAccess::StaticStore:
      case HeapAccess::MapPut:
      case HeapAccess::CollAdd: {
        for (SDGNodeId Sk : HE.carrierSinksFor(N)) {
          if (!(G.node(Sk).SinkMask & Rule))
            continue;
          auto CIt = Carrier.find(Sk);
          if (CIt == Carrier.end() || CIt->second.second > D + 1)
            Carrier[Sk] = {N, D + 1};
        }
        // Direct store->load edges, metered by the heap budget (§6.2.1).
        if (!HeapBudget.consume())
          break;
        for (SDGNodeId L : HE.loadsFor(N)) {
          if (!Dist.count(L)) {
            Dist[L] = D + 1;
            Parent[L] = N;
            Q.push_back(L);
          }
        }
        break;
      }
      default:
        break;
      }
    }
  }

  const std::unordered_map<SDGNodeId, SDGNodeId> NoHops;
  auto Record = [&](SDGNodeId Sk, uint32_t Len, SDGNodeId PathFrom) {
    if (Opts.MaxFlowLength != 0 && Len > Opts.MaxFlowLength)
      return;
    Issue Iss;
    Iss.Source = G.node(Src).S;
    Iss.Sink = G.node(Sk).S;
    Iss.Rule = Rule;
    Iss.Length = Len;
    Iss.Path =
        slicer_detail::reconstructPath(G, Parent, NoHops, PathFrom, Sk);
    Buf.push_back(std::move(Iss));
  };
  for (SDGNodeId Sk : G.sinkNodes()) {
    if (!(G.node(Sk).SinkMask & Rule))
      continue;
    auto DIt = Dist.find(Sk);
    if (DIt != Dist.end())
      Record(Sk, DIt->second, Sk);
    auto CIt = Carrier.find(Sk);
    if (CIt != Carrier.end())
      Record(Sk, CIt->second.second, CIt->second.first);
  }
}

} // namespace

SliceRunResult taj::runCiSlicer(const Program &P, const ClassHierarchy &CHA,
                                const PointsToSolver &Solver,
                                const SlicerOptions &Opts) {
  RunGuard *Guard = Opts.Guard;
  if (Guard)
    Guard->beginPhase(RunPhase::SdgBuild);
  SDGOptions SO;
  SO.Guard = Guard;
  SO.ContextExpanded = false;
  SO.WithChanParams = false;
  SO.ModelExceptionSources = Opts.ModelExceptionSources;
  SO.Profile = Opts.Profile;
  std::optional<persist::SdgArtifacts> A;
  {
    PhaseScope PS(Opts.Profile, "sdg");
    A.emplace(persist::loadOrBuildSdg(P, CHA, Solver, SO,
                                      Opts.NestedTaintDepth, Opts.Cache,
                                      Opts.CacheKey));
  }
  const SDG &G = *A->G;
  const HeapEdges &HE = *A->HE;
  slicer_detail::verifySdgPhase(P, G, &HE, Solver, Opts, A->FromCache);

  SliceRunResult Out;
  if (Guard)
    Guard->beginPhase(RunPhase::Slicing);
  PhaseScope PS(Opts.Profile, "slicing");
  std::vector<SliceItem> Items = slicer_detail::collectSliceItems(G);
  struct CiWorkerState {}; // the BFS carries no cross-item state
  slicer_detail::runSliceItems(
      Opts.Threads, Items, Guard, Out, [] { return CiWorkerState(); },
      [&](CiWorkerState &, const SliceItem &It, std::vector<Issue> &Buf,
          uint64_t &Edges) { sliceOneCi(G, HE, It, Opts, Guard, Buf, Edges); });
  slicer_detail::verifyWitnessPhase(G, &HE, Out, Opts);
  return Out;
}
