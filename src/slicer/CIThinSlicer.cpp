//===- slicer/CIThinSlicer.cpp - context-insensitive baseline --*- C++ -*-===//

#include "slicer/HeapEdges.h"
#include "slicer/Slicer.h"
#include "slicer/SlicerCommon.h"
#include "support/RunGuard.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace taj;

SliceRunResult taj::runCiSlicer(const Program &P, const ClassHierarchy &CHA,
                                const PointsToSolver &Solver,
                                const SlicerOptions &Opts) {
  RunGuard *Guard = Opts.Guard;
  if (Guard)
    Guard->beginPhase(RunPhase::SdgBuild);
  SDGOptions SO;
  SO.Guard = Guard;
  SO.ContextExpanded = false;
  SO.WithChanParams = false;
  SO.ModelExceptionSources = Opts.ModelExceptionSources;
  SDG G(P, CHA, Solver, SO);
  HeapGraph HG(Solver);
  HeapEdges HE(P, G, Solver, HG, Opts.NestedTaintDepth, Guard);

  SliceRunResult Out;
  std::set<Issue> Dedup;

  if (Guard)
    Guard->beginPhase(RunPhase::Slicing);
  for (int RB = 0; RB < rules::NumRules; ++RB) {
    if (Guard && Guard->stopped())
      break; // cutoff: report what earlier rules found
    RuleMask Rule = static_cast<RuleMask>(1u << RB);
    for (SDGNodeId Src : G.sourceNodes(Rule)) {
      if (Guard && !Guard->checkpoint())
        break;
      // Plain BFS: every SDG edge is followed with no call/return
      // matching, plus direct store->load heap edges — CI thin slicing.
      std::unordered_map<SDGNodeId, uint32_t> Dist;
      std::unordered_map<SDGNodeId, SDGNodeId> Parent;
      std::unordered_map<SDGNodeId, std::pair<SDGNodeId, uint32_t>> Carrier;
      std::deque<SDGNodeId> Q;
      Dist[Src] = 0;
      Parent[Src] = InvalidId;
      Q.push_back(Src);
      while (!Q.empty()) {
        if (Guard && !Guard->checkpoint())
          break; // cutoff: keep the partial reachability computed so far
        SDGNodeId N = Q.front();
        Q.pop_front();
        ++Out.PathEdges;
        uint32_t D = Dist[N];
        const SDGNode &Node = G.node(N);
        bool Barrier = Node.Kind == SDGNodeKind::Stmt &&
                       ((Node.SanitizeMask & Rule) || (Node.SinkMask & Rule));
        if (!Barrier) {
          for (const SDGEdge &E : G.succs(N)) {
            if (!Dist.count(E.To)) {
              Dist[E.To] = D + 1;
              Parent[E.To] = N;
              Q.push_back(E.To);
            }
          }
          // Heap hops at stores.
          switch (Node.Access) {
          case HeapAccess::FieldStore:
          case HeapAccess::ArrayStore:
          case HeapAccess::StaticStore:
          case HeapAccess::MapPut:
          case HeapAccess::CollAdd: {
            for (SDGNodeId L : HE.loadsFor(N)) {
              if (!Dist.count(L)) {
                Dist[L] = D + 1;
                Parent[L] = N;
                Q.push_back(L);
              }
            }
            for (SDGNodeId Sk : HE.carrierSinksFor(N)) {
              if (!(G.node(Sk).SinkMask & Rule))
                continue;
              auto CIt = Carrier.find(Sk);
              if (CIt == Carrier.end() || CIt->second.second > D + 1)
                Carrier[Sk] = {N, D + 1};
            }
            break;
          }
          default:
            break;
          }
        }
      }

      const std::unordered_map<SDGNodeId, SDGNodeId> NoHops;
      auto Record = [&](SDGNodeId Sk, uint32_t Len, SDGNodeId PathFrom) {
        if (Opts.MaxFlowLength != 0 && Len > Opts.MaxFlowLength)
          return;
        Issue Iss;
        Iss.Source = G.node(Src).S;
        Iss.Sink = G.node(Sk).S;
        Iss.Rule = Rule;
        Iss.Length = Len;
        Iss.Path =
            slicer_detail::reconstructPath(G, Parent, NoHops, PathFrom, Sk);
        if (Dedup.insert(Iss).second)
          Out.Issues.push_back(std::move(Iss));
      };
      for (SDGNodeId Sk : G.sinkNodes()) {
        if (!(G.node(Sk).SinkMask & Rule))
          continue;
        auto DIt = Dist.find(Sk);
        if (DIt != Dist.end())
          Record(Sk, DIt->second, Sk);
        auto CIt = Carrier.find(Sk);
        if (CIt != Carrier.end())
          Record(Sk, CIt->second.second, CIt->second.first);
      }
    }
  }
  std::sort(Out.Issues.begin(), Out.Issues.end());
  return Out;
}
