//===- slicer/HybridThinSlicer.cpp - TAJ's hybrid thin slicing -*- C++ -*-===//

#include "persist/Cache.h"
#include "rhs/Tabulation.h"
#include "slicer/HeapEdges.h"
#include "slicer/Slicer.h"
#include "slicer/SlicerCommon.h"
#include "support/RunGuard.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <set>

using namespace taj;
using slicer_detail::SliceItem;

namespace {

/// Worker-private state: one memoized Tabulation per rule, created on the
/// first item of that rule the worker picks up (summaries are reused
/// across all of the worker's sources for the rule, as the sequential
/// per-rule loop reuses them across all sources).
struct HybridWorkerState {
  std::array<std::unique_ptr<Tabulation>, rules::NumRules> Tabs;

  Tabulation &tab(const SDG &G, int RuleBit, RunGuard *Guard) {
    auto &T = Tabs[RuleBit];
    if (!T)
      T = std::make_unique<Tabulation>(
          G, static_cast<RuleMask>(1u << RuleBit), Guard);
    return *T;
  }
};

/// Slices one (rule, source) item: demand-driven HSDG traversal
/// alternating context-sensitive no-heap slices with flow-insensitive
/// store->load hops and taint-carrier edges. Appends every surviving
/// Record attempt to \p Buf in discovery order (the caller dedups).
void sliceOneHybrid(const SDG &G, const HeapEdges &HE, Tabulation &Tab,
                    const SliceItem &It, const SlicerOptions &Opts,
                    std::vector<Issue> &Buf) {
  RuleMask Rule = static_cast<RuleMask>(1u << It.RuleBit);
  SDGNodeId Src = It.Src;
  Tabulation::SliceResult R;
  std::vector<std::pair<SDGNodeId, uint32_t>> Seeds = {{Src, 0}};
  // §6.2.1: bound on store->load expansions of the slice.
  Budget HeapBudget(Opts.MaxHeapTransitions);
  std::set<SDGNodeId> ExpandedStores;
  std::unordered_map<SDGNodeId, SDGNodeId> HopParent;
  // Carrier-discovered sinks: sink node -> (store parent, length).
  std::unordered_map<SDGNodeId, std::pair<SDGNodeId, uint32_t>> Carrier;

  bool More = true;
  while (More) {
    Tab.forwardSlice(Seeds, R);
    Seeds.clear();
    More = false;
    for (SDGNodeId St : G.storeNodes()) {
      auto DIt = R.Dist.find(St);
      if (DIt == R.Dist.end() || !ExpandedStores.insert(St).second)
        continue;
      uint32_t D = DIt->second;
      // Taint-carrier edges (§4.1.1): store -> sink.
      for (SDGNodeId Sk : HE.carrierSinksFor(St)) {
        if (!(G.node(Sk).SinkMask & Rule))
          continue;
        auto CIt = Carrier.find(Sk);
        if (CIt == Carrier.end() || CIt->second.second > D + 1)
          Carrier[Sk] = {St, D + 1};
      }
      // Direct store->load edges, metered by the heap budget.
      if (!HeapBudget.consume())
        continue;
      for (SDGNodeId L : HE.loadsFor(St)) {
        auto LIt = R.Dist.find(L);
        if (LIt != R.Dist.end() && LIt->second <= D + 1)
          continue;
        Seeds.emplace_back(L, D + 1);
        HopParent[L] = St;
        More = true;
      }
    }
  }

  auto Record = [&](SDGNodeId Sk, uint32_t Len, SDGNodeId PathFrom) {
    if (Opts.MaxFlowLength != 0 && Len > Opts.MaxFlowLength)
      return; // flow-length filter (§6.2.2)
    Issue Iss;
    Iss.Source = G.node(Src).S;
    Iss.Sink = G.node(Sk).S;
    Iss.Rule = Rule;
    Iss.Length = Len;
    Iss.Path = slicer_detail::reconstructPath(G, R.Parent, HopParent,
                                              PathFrom, Sk);
    Buf.push_back(std::move(Iss));
  };

  for (SDGNodeId Sk : G.sinkNodes()) {
    if (!(G.node(Sk).SinkMask & Rule))
      continue;
    auto DIt = R.Dist.find(Sk);
    if (DIt != R.Dist.end())
      Record(Sk, DIt->second, Sk);
    auto CIt = Carrier.find(Sk);
    if (CIt != Carrier.end())
      Record(Sk, CIt->second.second, CIt->second.first);
  }
}

} // namespace

SliceRunResult taj::runHybridSlicer(const Program &P,
                                    const ClassHierarchy &CHA,
                                    const PointsToSolver &Solver,
                                    const SlicerOptions &Opts) {
  RunGuard *Guard = Opts.Guard;
  if (Guard)
    Guard->beginPhase(RunPhase::SdgBuild);
  SDGOptions SO;
  SO.Guard = Guard;
  SO.ContextExpanded = true;
  SO.WithChanParams = false;
  SO.ModelExceptionSources = Opts.ModelExceptionSources;
  SO.Profile = Opts.Profile;
  std::optional<persist::SdgArtifacts> A;
  {
    PhaseScope PS(Opts.Profile, "sdg");
    A.emplace(persist::loadOrBuildSdg(P, CHA, Solver, SO,
                                      Opts.NestedTaintDepth, Opts.Cache,
                                      Opts.CacheKey));
  }
  const SDG &G = *A->G;
  const HeapEdges &HE = *A->HE;
  slicer_detail::verifySdgPhase(P, G, &HE, Solver, Opts, A->FromCache);

  SliceRunResult Out;
  if (Guard)
    Guard->beginPhase(RunPhase::Slicing);
  PhaseScope PS(Opts.Profile, "slicing");
  std::vector<SliceItem> Items = slicer_detail::collectSliceItems(G);
  slicer_detail::runSliceItems(
      Opts.Threads, Items, Guard, Out, [] { return HybridWorkerState(); },
      [&](HybridWorkerState &WS, const SliceItem &It, std::vector<Issue> &Buf,
          uint64_t &PathEdges) {
        Tabulation &Tab = WS.tab(G, It.RuleBit, Guard);
        uint64_t Before = Tab.pathEdgeCount();
        sliceOneHybrid(G, HE, Tab, It, Opts, Buf);
        PathEdges += Tab.pathEdgeCount() - Before;
      });
  slicer_detail::verifyWitnessPhase(G, &HE, Out, Opts);
  return Out;
}
