//===- slicer/HybridThinSlicer.cpp - TAJ's hybrid thin slicing -*- C++ -*-===//

#include "rhs/Tabulation.h"
#include "slicer/HeapEdges.h"
#include "slicer/Slicer.h"
#include "slicer/SlicerCommon.h"
#include "support/RunGuard.h"
#include "support/Stats.h"

#include <algorithm>
#include <set>

using namespace taj;

SliceRunResult taj::runHybridSlicer(const Program &P,
                                    const ClassHierarchy &CHA,
                                    const PointsToSolver &Solver,
                                    const SlicerOptions &Opts) {
  RunGuard *Guard = Opts.Guard;
  if (Guard)
    Guard->beginPhase(RunPhase::SdgBuild);
  SDGOptions SO;
  SO.Guard = Guard;
  SO.ContextExpanded = true;
  SO.WithChanParams = false;
  SO.ModelExceptionSources = Opts.ModelExceptionSources;
  SDG G(P, CHA, Solver, SO);
  HeapGraph HG(Solver);
  HeapEdges HE(P, G, Solver, HG, Opts.NestedTaintDepth, Guard);

  SliceRunResult Out;
  std::set<Issue> Dedup;

  if (Guard)
    Guard->beginPhase(RunPhase::Slicing);
  for (int RB = 0; RB < rules::NumRules; ++RB) {
    if (Guard && Guard->stopped())
      break; // cutoff: report what earlier rules found
    RuleMask Rule = static_cast<RuleMask>(1u << RB);
    Tabulation Tab(G, Rule, Guard);
    for (SDGNodeId Src : G.sourceNodes(Rule)) {
      if (Guard && !Guard->checkpoint())
        break;
      Tabulation::SliceResult R;
      std::vector<std::pair<SDGNodeId, uint32_t>> Seeds = {{Src, 0}};
      // §6.2.1: bound on store->load expansions of the slice.
      Budget HeapBudget(Opts.MaxHeapTransitions);
      std::set<SDGNodeId> ExpandedStores;
      std::unordered_map<SDGNodeId, SDGNodeId> HopParent;
      // Carrier-discovered sinks: sink node -> (store parent, length).
      std::unordered_map<SDGNodeId, std::pair<SDGNodeId, uint32_t>> Carrier;

      bool More = true;
      while (More) {
        Tab.forwardSlice(Seeds, R);
        Seeds.clear();
        More = false;
        for (SDGNodeId St : G.storeNodes()) {
          auto DIt = R.Dist.find(St);
          if (DIt == R.Dist.end() || !ExpandedStores.insert(St).second)
            continue;
          uint32_t D = DIt->second;
          // Taint-carrier edges (§4.1.1): store -> sink.
          for (SDGNodeId Sk : HE.carrierSinksFor(St)) {
            if (!(G.node(Sk).SinkMask & Rule))
              continue;
            auto CIt = Carrier.find(Sk);
            if (CIt == Carrier.end() || CIt->second.second > D + 1)
              Carrier[Sk] = {St, D + 1};
          }
          // Direct store->load edges, metered by the heap budget.
          if (!HeapBudget.consume())
            continue;
          for (SDGNodeId L : HE.loadsFor(St)) {
            auto LIt = R.Dist.find(L);
            if (LIt != R.Dist.end() && LIt->second <= D + 1)
              continue;
            Seeds.emplace_back(L, D + 1);
            HopParent[L] = St;
            More = true;
          }
        }
      }

      auto Record = [&](SDGNodeId Sk, uint32_t Len, SDGNodeId PathFrom) {
        Issue Iss;
        Iss.Source = G.node(Src).S;
        Iss.Sink = G.node(Sk).S;
        Iss.Rule = Rule;
        Iss.Length = Len;
        if (Opts.MaxFlowLength != 0 && Len > Opts.MaxFlowLength)
          return; // flow-length filter (§6.2.2)
        Iss.Path = slicer_detail::reconstructPath(G, R.Parent, HopParent,
                                                  PathFrom, Sk);
        if (Dedup.insert(Iss).second)
          Out.Issues.push_back(std::move(Iss));
      };

      for (SDGNodeId Sk : G.sinkNodes()) {
        if (!(G.node(Sk).SinkMask & Rule))
          continue;
        auto DIt = R.Dist.find(Sk);
        if (DIt != R.Dist.end())
          Record(Sk, DIt->second, Sk);
        auto CIt = Carrier.find(Sk);
        if (CIt != Carrier.end())
          Record(Sk, CIt->second.second, CIt->second.first);
      }
    }
    Out.PathEdges += Tab.pathEdgeCount();
  }
  std::sort(Out.Issues.begin(), Out.Issues.end());
  return Out;
}
