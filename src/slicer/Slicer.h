//===- slicer/Slicer.h - The three thin-slicing algorithms -----*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry points for the three slicing algorithms evaluated in TAJ §7:
///
///  - hybrid thin slicing (§3.2, the paper's contribution): demand-driven
///    HSDG traversal alternating context-sensitive no-heap slices with
///    flow-insensitive store->load hops and taint-carrier edges;
///  - CS thin slicing: fully context-sensitive, heap dependencies threaded
///    through calls as extra parameters (may exhaust its memory budget);
///  - CI thin slicing: context-insensitive reachability over the SDG plus
///    direct heap edges.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_SLICER_SLICER_H
#define TAJ_SLICER_SLICER_H

#include "pointsto/Solver.h"
#include "slicer/Issue.h"
#include "verify/Verify.h"

namespace taj {

namespace persist {
class ArtifactCache;
}

class PhaseProfile;

/// Bounds applied during slicing (TAJ §6.2). Zero disables a bound.
struct SlicerOptions {
  /// Optional run-governance guard; polled during SDG construction and
  /// every traversal loop. Not owned.
  RunGuard *Guard = nullptr;
  /// Worker threads for the per-source slicing loops. 1 (default) slices
  /// on the calling thread; 0 resolves to TAJ_THREADS / hardware
  /// concurrency. The SDG, heap graph and heap edges are always built
  /// once, single-threaded, before the fan-out, and per-worker results are
  /// merged deterministically, so the output is byte-identical at every
  /// thread count.
  uint32_t Threads = 1;
  /// Max store->load hop expansions during hybrid slicing (§6.2.1).
  uint32_t MaxHeapTransitions = 0;
  /// Flows longer than this are dropped (§6.2.2).
  uint32_t MaxFlowLength = 0;
  /// Field-dereference bound for taint-carrier detection (§6.2.3).
  uint32_t NestedTaintDepth = 32;
  /// Synthesize LEAK sources at caught-exception statements (§4.1.2).
  bool ModelExceptionSources = true;
  /// Channel-node budget for CS thin slicing (0 = unbounded).
  uint64_t CsChanBudget = 0;
  /// Optional artifact cache for the SDG phase (persist/Cache.h); not
  /// owned. When set together with a non-empty CacheKey, the slicer
  /// restores the SDG + heap edges from cache instead of rebuilding, or
  /// stores them after a clean cold build.
  persist::ArtifactCache *Cache = nullptr;
  /// Content address of the SDG artifact for this (input, config) pair.
  std::string CacheKey;
  /// Optional per-phase profile (support/Trace.h); the slicer brackets its
  /// sdg / slicing phases and the persist load/store paths with it. Not
  /// owned; may be null.
  PhaseProfile *Profile = nullptr;
  /// Self-verification (verify/Verify.h): Fast checks SDG endpoint
  /// liveness and replays every reported issue as an HSDG witness path;
  /// Full additionally justifies heap edges and re-verifies warm SDG
  /// restores structurally. Checks run only when the phase completed
  /// without a governance stop. Requires Violations when not Off.
  verify::VerifyMode Verify = verify::VerifyMode::Off;
  /// Violation sink for the verification above. Not owned; may be null
  /// only when Verify is Off.
  verify::Violations *Violations = nullptr;
};

/// Hybrid thin slicing over the HSDG.
SliceRunResult runHybridSlicer(const Program &P, const ClassHierarchy &CHA,
                               const PointsToSolver &Solver,
                               const SlicerOptions &Opts);

/// Context-sensitive thin slicing (heap deps as parameters).
SliceRunResult runCsSlicer(const Program &P, const ClassHierarchy &CHA,
                           const PointsToSolver &Solver,
                           const SlicerOptions &Opts);

/// Context-insensitive thin slicing.
SliceRunResult runCiSlicer(const Program &P, const ClassHierarchy &CHA,
                           const PointsToSolver &Solver,
                           const SlicerOptions &Opts);

} // namespace taj

#endif // TAJ_SLICER_SLICER_H
