//===- dataflow/ConstString.h - String-constant propagation ----*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse SCCP-style constant-string analysis over TIR SSA, the first
/// client-independent dataflow pass of the repository. TAJ's code models
/// (§4.2) hinge on statically inferable string constants: constant-key
/// dictionary channels (§4.2.1) and reflection "with inferable arguments"
/// (§4.2.3). This pass computes, once per run and before the pointer
/// analysis, which SSA values are compile-time string constants.
///
/// The lattice per value is ⊤ (no evidence yet, optimistic) / a known
/// constant Symbol / ⊥ (provably not a single constant). Intraprocedurally
/// the transfer functions cover ConstStr, Copy, phis (meet of equal
/// constants) and modeled string-carrier chains (StringBuilder-style
/// append of constant operands folds to the concatenated constant).
/// In `ipa` mode an interprocedural fixpoint additionally propagates
/// constants through call arguments → parameters and returns → call
/// results over CHA-resolved edges (meeting across all call sites), plus
/// static/instance field constants (meet over all stores; a write-once
/// field keeps its constant). `local` mode reproduces the historical
/// per-method ConstStr+Copy resolution exactly and serves as a regression
/// anchor; `off` disables inference entirely.
///
/// The result is immutable and queried by the pointer solver (dictionary
/// channel naming, Class.forName / getMethod resolution), by
/// SDG::constKeyOf and by the heap-edge builder. Because an optimistic
/// fixpoint stopped early may still claim constants a later meet would
/// have refuted, a RunGuard cutoff mid-fixpoint discards the
/// interprocedural state and falls back to the sound local-only result,
/// marking the result degraded.
///
//===----------------------------------------------------------------------===//

#ifndef TAJ_DATAFLOW_CONSTSTRING_H
#define TAJ_DATAFLOW_CONSTSTRING_H

#include "cha/ClassHierarchy.h"
#include "ir/Program.h"
#include "support/Stats.h"

#include <string_view>
#include <vector>

namespace taj {

class RunGuard;

/// How much string-constant inference to run (taj-cli --string-analysis).
enum class StringAnalysisMode : uint8_t {
  Off,   ///< No inference: every query answers "unknown".
  Local, ///< Per-method ConstStr + Copy chains (historical behavior).
  Ipa,   ///< Full sparse analysis: phis, carrier concatenation, fields,
         ///< and interprocedural argument/return propagation.
};

/// Canonical flag spelling ("off" / "local" / "ipa").
const char *stringAnalysisModeName(StringAnalysisMode M);

/// Parses a --string-analysis= spelling; returns false on junk.
bool parseStringAnalysisMode(std::string_view S, StringAnalysisMode &Out);

/// Configuration of one analyzeConstStrings run.
struct ConstStringOptions {
  StringAnalysisMode Mode = StringAnalysisMode::Ipa;
  /// Optional run-governance guard, polled inside the fixpoint loop. Not
  /// owned. A cutoff degrades the result to the local-only answer.
  RunGuard *Guard = nullptr;
};

/// Immutable (method, value) → constant-string map. Cheap to query from
/// every consumer; ~0u means "not a known constant" (⊤ and ⊥ are
/// deliberately indistinguishable to clients — neither licenses a model).
class ConstStringResult {
public:
  /// Client-facing "unknown" answer.
  static constexpr Symbol Unknown = ~0u;

  /// Constant string defined by SSA value \p V of method \p M, or Unknown.
  Symbol valueOf(MethodId M, ValueId V) const {
    if (V < 0 || M >= MethodBase.size() - 1)
      return Unknown;
    uint32_t Base = MethodBase[M];
    if (Base + static_cast<uint32_t>(V) >= MethodBase[M + 1])
      return Unknown;
    Symbol S = Values[Base + static_cast<uint32_t>(V)];
    return S >= Top ? Unknown : S;
  }

  StringAnalysisMode mode() const { return Mode; }

  /// True when a RunGuard cutoff forced the fall-back to local-only facts.
  bool degraded() const { return Degraded; }

  /// conststr.* counters (resolved values, meets to bottom, folds, ...).
  const Stats &stats() const { return Counters; }

private:
  friend class ConstStringAnalysis;
  friend ConstStringResult analyzeConstStrings(const Program &,
                                               const ClassHierarchy &,
                                               const ConstStringOptions &);

  /// Internal lattice sentinels; anything >= Top is not a constant.
  static constexpr Symbol Top = 0xFFFFFFFEu;
  static constexpr Symbol Bottom = 0xFFFFFFFFu;

  StringAnalysisMode Mode = StringAnalysisMode::Off;
  bool Degraded = false;
  /// Per-method base offset into Values (size NumMethods + 1); the slice
  /// [MethodBase[M], MethodBase[M+1]) holds method M's value lattice.
  std::vector<uint32_t> MethodBase = {0};
  std::vector<Symbol> Values;
  Stats Counters;
};

/// Runs the analysis over the whole (post-SSA, statement-indexed) program.
/// Deterministic for a given program and options; interns folded
/// concatenations into the program's string pool.
ConstStringResult analyzeConstStrings(const Program &P,
                                      const ClassHierarchy &CHA,
                                      const ConstStringOptions &Opts = {});

} // namespace taj

#endif // TAJ_DATAFLOW_CONSTSTRING_H
