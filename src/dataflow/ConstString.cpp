//===- dataflow/ConstString.cpp - String-constant propagation --*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Sparse conditional-constant-style propagation over one global cell
// graph. Cells cover every SSA value of every method, one return cell per
// method, one cell per field, plus auxiliary cells for folded carrier
// concatenations. Each non-leaf cell is either a meet over its operands or
// a string concatenation of them; dependency edges drive a worklist until
// fixpoint. The lattice has height 2 (⊤ → constant → ⊥), so every cell
// changes at most twice and the fixpoint is O(edges).
//
// Interprocedural edges need call targets before the pointer analysis has
// built a call graph. A light intraprocedural type-cone pass (declared
// parameter/return/field types, exact types from New, meets at phis)
// bounds each receiver by a superclass; CHA then enumerates the possible
// targets under that cone. The cone is a sound upper bound of the runtime
// receiver class, so meeting over all enumerated targets never claims a
// constant a runtime dispatch could refute. Methods only reachable
// reflectively (Method.invoke) or via Thread.start get their parameters
// poisoned to ⊥, since those call sites bind arguments outside the normal
// argument→parameter edges.
//
//===----------------------------------------------------------------------===//

#include "dataflow/ConstString.h"

#include "support/RunGuard.h"

#include <algorithm>
#include <string>

using namespace taj;

const char *taj::stringAnalysisModeName(StringAnalysisMode M) {
  switch (M) {
  case StringAnalysisMode::Off:
    return "off";
  case StringAnalysisMode::Local:
    return "local";
  case StringAnalysisMode::Ipa:
    return "ipa";
  }
  return "?";
}

bool taj::parseStringAnalysisMode(std::string_view S,
                                  StringAnalysisMode &Out) {
  if (S == "off")
    Out = StringAnalysisMode::Off;
  else if (S == "local")
    Out = StringAnalysisMode::Local;
  else if (S == "ipa")
    Out = StringAnalysisMode::Ipa;
  else
    return false;
  return true;
}

namespace taj {

class ConstStringAnalysis {
public:
  ConstStringAnalysis(const Program &P, const ClassHierarchy &CHA,
                      RunGuard *Guard)
      : P(P), CHA(CHA), Guard(Guard) {}

  /// Runs one mode to fixpoint into \p R. Returns false iff the guard
  /// stopped the run mid-way (R is then unusable and the caller falls
  /// back to a fresh local-only analysis).
  bool run(StringAnalysisMode Mode, ConstStringResult &R);

private:
  static constexpr Symbol kTop = ConstStringResult::Top;
  static constexpr Symbol kBottom = ConstStringResult::Bottom;
  /// "No cone computed" marker for the type pass (distinct from a real
  /// class id; values of this type are never valid receivers).
  static constexpr ClassId kNoCone = InvalidId;

  enum class EvalKind : uint8_t { Leaf, Meet, Concat };

  //===--------------------------------------------------------------------===//
  // Cell graph
  //===--------------------------------------------------------------------===//

  uint32_t newCell(EvalKind K, Symbol Init) {
    uint32_t C = static_cast<uint32_t>(Val.size());
    Val.push_back(Init);
    Kind.push_back(K);
    Ops.emplace_back();
    Deps.emplace_back();
    NameWatch.push_back(false);
    return C;
  }

  uint32_t valueCell(MethodId M, ValueId V) const {
    return MethodBase[M] + static_cast<uint32_t>(V);
  }

  /// Adds \p Src as an operand of meet/concat cell \p Dst (with the
  /// reverse dependency edge).
  void addOperand(uint32_t Dst, uint32_t Src) {
    Ops[Dst].push_back(Src);
    Deps[Src].push_back(Dst);
  }

  /// Lowers \p C to \p NV (⊤ → const → ⊥ only) and wakes its dependents.
  /// \p ConstConflict marks a meet of two distinct constants (stats).
  void lower(uint32_t C, Symbol NV, bool ConstConflict = false) {
    Symbol Old = Val[C];
    if (Old == NV || Old == kBottom)
      return;
    // A constant may only be refuted to ⊥, never replaced sideways.
    if (Old != kTop && NV != kBottom)
      NV = kBottom;
    if (NV == kTop)
      return;
    Val[C] = NV;
    if (NV == kBottom && (Old != kTop || ConstConflict))
      ++MeetsToBottom;
    for (uint32_t D : Deps[C])
      enqueue(D);
    if (NameWatch[C] && NV != kBottom)
      poisonMethodsNamed(NV);
  }

  void enqueue(uint32_t C) {
    if (C < InWl.size() && !InWl[C]) {
      InWl[C] = true;
      Worklist.push_back(C);
    }
  }

  void eval(uint32_t C) {
    if (Kind[C] == EvalKind::Leaf)
      return;
    if (Kind[C] == EvalKind::Meet) {
      Symbol Acc = kTop;
      bool Conflict = false;
      for (uint32_t O : Ops[C]) {
        Symbol V = Val[O];
        if (V == kTop)
          continue;
        if (V == kBottom) {
          Acc = kBottom;
          break;
        }
        if (Acc == kTop) {
          Acc = V;
        } else if (Acc != V) {
          Acc = kBottom;
          Conflict = true;
          break;
        }
      }
      lower(C, Acc, Conflict);
      return;
    }
    // Concat: all operands must be constants; any ⊥ poisons, any ⊤ waits.
    std::string S;
    for (uint32_t O : Ops[C]) {
      Symbol V = Val[O];
      if (V >= kTop) {
        if (V == kBottom)
          lower(C, kBottom);
        return;
      }
      S += P.Pool.str(V);
    }
    ++ConcatsFolded;
    lower(C, intern(S));
  }

  Symbol intern(std::string_view S) const {
    // The pool is append-only and the analysis is single-threaded; the
    // solver relies on the same benign const_cast for channel names.
    return const_cast<Program &>(P).Pool.intern(S);
  }

  /// Marks \p C as the name operand of a getMethod site: once it resolves
  /// to a constant, every same-named method becomes reflectively callable
  /// and its parameters are bound outside our edges.
  void watchName(uint32_t C) {
    NameWatch[C] = true;
    if (Val[C] != kTop && Val[C] != kBottom)
      poisonMethodsNamed(Val[C]);
  }

  void poisonMethodsNamed(Symbol Name) {
    for (const Method &M : P.Methods)
      if (M.Name == Name && M.hasBody())
        poisonParams(M.Id);
  }

  void poisonParams(MethodId M) {
    for (uint32_t K = 0; K < P.Methods[M].NumParams; ++K)
      lower(valueCell(M, static_cast<ValueId>(K)), kBottom);
  }

  //===--------------------------------------------------------------------===//
  // Type cones (receiver bounds for CHA dispatch)
  //===--------------------------------------------------------------------===//

  ClassId rootClass() const {
    for (const Class &C : P.Classes)
      if (C.Super == InvalidId)
        return C.Id;
    return InvalidId;
  }

  /// Nearest common superclass (both arguments are real class ids).
  ClassId commonSuper(ClassId A, ClassId B) const {
    while (CHA.depth(A) > CHA.depth(B))
      A = P.cls(A).Super;
    while (CHA.depth(B) > CHA.depth(A))
      B = P.cls(B).Super;
    while (A != B) {
      A = P.cls(A).Super;
      B = P.cls(B).Super;
    }
    return A;
  }

  /// Widens cone \p Into by \p C (kNoCone = no information).
  static void widen(ClassId &Into, ClassId C,
                    const ConstStringAnalysis &Self) {
    if (C == kNoCone)
      return;
    if (Into == kNoCone)
      Into = C;
    else if (Into != C)
      Into = Self.commonSuper(Into, C);
  }

  ClassId typeOfDecl(const Type &T) const {
    return T.isRefLike() ? T.Cls : kNoCone;
  }

  /// Candidate targets of a virtual call named \p Name on receiver cone
  /// \p Cone: every resolution over the cone's subtypes.
  void coneTargets(ClassId Cone, Symbol Name,
                   std::vector<MethodId> &Out) const {
    Out.clear();
    if (Cone == kNoCone)
      return;
    for (ClassId S : CHA.subtypes(Cone)) {
      MethodId T = CHA.resolveVirtual(S, Name);
      if (T != InvalidId &&
          std::find(Out.begin(), Out.end(), T) == Out.end())
        Out.push_back(T);
    }
  }

  /// Declared return-type cone across current candidates of a call.
  ClassId callResultCone(const Instruction &I,
                         const std::vector<ClassId> &T) const {
    std::vector<MethodId> Targets;
    if (I.CKind == CallKind::Virtual) {
      if (I.Args.empty())
        return kNoCone;
      coneTargets(T[static_cast<size_t>(I.Args[0])], I.CalleeName, Targets);
    } else {
      MethodId M = CHA.resolveVirtual(I.Cls, I.CalleeName);
      if (M != InvalidId)
        Targets.push_back(M);
    }
    ClassId Cone = kNoCone;
    for (MethodId M : Targets)
      widen(Cone, typeOfDecl(P.Methods[M].RetType), *this);
    return Cone;
  }

  /// Intraprocedural type-cone fixpoint for method \p M. Every value that
  /// can hold a reference gets a sound superclass bound; cones only widen,
  /// so a handful of sweeps converge.
  std::vector<ClassId> computeCones(const Method &M) {
    std::vector<ClassId> T(M.NumValues, kNoCone);
    for (uint32_t K = 0; K < M.NumParams && K < M.NumValues; ++K)
      T[K] = typeOfDecl(M.ParamTypes[K]);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const BasicBlock &BB : M.Blocks) {
        for (const Instruction &I : BB.Insts) {
          if (I.Dst == NoValue)
            continue;
          ClassId Cone = T[static_cast<size_t>(I.Dst)];
          ClassId Before = Cone;
          switch (I.Op) {
          case Opcode::ConstStr:
            widen(Cone, StringCls, *this);
            break;
          case Opcode::New:
          case Opcode::NewArray:
            widen(Cone, I.Cls, *this);
            break;
          case Opcode::Copy:
            widen(Cone, T[static_cast<size_t>(I.Args[0])], *this);
            break;
          case Opcode::Phi:
            for (ValueId A : I.Args)
              if (A != NoValue)
                widen(Cone, T[static_cast<size_t>(A)], *this);
            break;
          case Opcode::Load:
          case Opcode::StaticLoad:
            widen(Cone, typeOfDecl(P.field(I.Field).Ty), *this);
            break;
          case Opcode::ArrayLoad:
          case Opcode::Caught:
            widen(Cone, Root, *this);
            break;
          case Opcode::Call:
            widen(Cone, callResultCone(I, T), *this);
            break;
          default:
            break;
          }
          if (Cone != Before) {
            T[static_cast<size_t>(I.Dst)] = Cone;
            Changed = true;
          }
        }
      }
    }
    return T;
  }

  //===--------------------------------------------------------------------===//
  // Edge construction
  //===--------------------------------------------------------------------===//

  /// True when a StringTransfer target folds as concatenation of its
  /// arguments: only the carrier-chain model methods (§4.2.1). Other
  /// transfers (trim, format, ...) derive arbitrary strings → ⊥.
  bool foldsAsConcat(const Method &M) const {
    if (!P.cls(M.Owner).is(classflags::StringCarrier))
      return false;
    std::string_view N = P.Pool.str(M.Name);
    return N == "append" || N == "concat" || N == "toString";
  }

  void addCallEdges(MethodId Caller, const Instruction &I,
                    const std::vector<ClassId> &Cones) {
    std::vector<MethodId> Targets;
    if (I.CKind == CallKind::Virtual) {
      if (I.Args.empty())
        return;
      coneTargets(Cones[static_cast<size_t>(I.Args[0])], I.CalleeName,
                  Targets);
    } else {
      MethodId T = CHA.resolveVirtual(I.Cls, I.CalleeName);
      if (T != InvalidId)
        Targets.push_back(T);
    }
    uint32_t DstCell =
        I.Dst != NoValue ? valueCell(Caller, I.Dst) : InvalidId;
    for (MethodId TM : Targets) {
      const Method &Callee = P.Methods[TM];
      if (Callee.hasBody()) {
        // Arguments bind parameters positionally (receiver = param 0);
        // missing arguments poison the parameters they fail to bind.
        uint32_t Bound =
            std::min<uint32_t>(static_cast<uint32_t>(I.Args.size()),
                               Callee.NumParams);
        for (uint32_t K = 0; K < Bound; ++K) {
          if (I.Args[K] == NoValue)
            lower(valueCell(TM, static_cast<ValueId>(K)), kBottom);
          else
            addOperand(valueCell(TM, static_cast<ValueId>(K)),
                       valueCell(Caller, I.Args[K]));
        }
        for (uint32_t K = Bound; K < Callee.NumParams; ++K)
          lower(valueCell(TM, static_cast<ValueId>(K)), kBottom);
        if (DstCell != InvalidId)
          addOperand(DstCell, RetCell[TM]);
        continue;
      }
      switch (Callee.Intr) {
      case Intrinsic::Identity:
        // Returns one of its arguments: the meet is a sound summary.
        if (DstCell != InvalidId)
          for (ValueId A : I.Args)
            if (A != NoValue)
              addOperand(DstCell, valueCell(Caller, A));
        break;
      case Intrinsic::StringTransfer:
        if (DstCell != InvalidId) {
          if (foldsAsConcat(Callee)) {
            uint32_t Aux = newCell(EvalKind::Concat, kTop);
            InWl.push_back(false);
            for (ValueId A : I.Args)
              if (A != NoValue)
                addOperand(Aux, valueCell(Caller, A));
            addOperand(DstCell, Aux);
          } else {
            addOperand(DstCell, BottomCell);
          }
        }
        break;
      case Intrinsic::GetMethod:
        // Constant method names open reflective entry into same-named
        // methods; their parameters are bound by Method.invoke, outside
        // our argument edges.
        if (I.Args.size() >= 2 && I.Args[1] != NoValue)
          watchName(valueCell(Caller, I.Args[1]));
        if (DstCell != InvalidId)
          addOperand(DstCell, BottomCell);
        break;
      case Intrinsic::ThreadStart:
        // start() dispatches to the receiver's run() with only the
        // receiver bound; poison run()'s parameters under the cone.
        if (!I.Args.empty()) {
          std::vector<MethodId> Runs;
          coneTargets(Cones[static_cast<size_t>(I.Args[0])], RunSym, Runs);
          for (MethodId R : Runs)
            if (P.Methods[R].hasBody())
              poisonParams(R);
        }
        break;
      default:
        // Every other model (sources, sinks, maps, collections, JNDI,
        // forName, invoke, getMessage, natives) yields runtime data.
        if (DstCell != InvalidId)
          addOperand(DstCell, BottomCell);
        break;
      }
    }
  }

  void addMethodEdges(const Method &M, bool Ipa) {
    std::vector<ClassId> Cones;
    if (Ipa)
      Cones = computeCones(M);
    for (const BasicBlock &BB : M.Blocks) {
      for (const Instruction &I : BB.Insts) {
        switch (I.Op) {
        case Opcode::ConstStr:
          lower(valueCell(M.Id, I.Dst), I.StrLit);
          break;
        case Opcode::Copy:
          if (I.Args[0] != NoValue)
            addOperand(valueCell(M.Id, I.Dst), valueCell(M.Id, I.Args[0]));
          break;
        case Opcode::Phi:
          if (!Ipa) {
            lower(valueCell(M.Id, I.Dst), kBottom);
            break;
          }
          for (ValueId A : I.Args)
            if (A != NoValue)
              addOperand(valueCell(M.Id, I.Dst), valueCell(M.Id, A));
          break;
        case Opcode::New:
          // A fresh string carrier holds the empty string; the carrier
          // model is functional (append returns the extended value), so
          // the allocation itself stays "".
          if (Ipa && P.cls(I.Cls).is(classflags::StringCarrier))
            lower(valueCell(M.Id, I.Dst), EmptySym);
          else if (I.Dst != NoValue)
            lower(valueCell(M.Id, I.Dst), kBottom);
          break;
        case Opcode::Load:
        case Opcode::StaticLoad:
          if (Ipa)
            addOperand(valueCell(M.Id, I.Dst), FieldCell[I.Field]);
          else
            lower(valueCell(M.Id, I.Dst), kBottom);
          break;
        case Opcode::Store:
          if (Ipa)
            addOperand(FieldCell[I.Field], valueCell(M.Id, I.Args[1]));
          break;
        case Opcode::StaticStore:
          if (Ipa)
            addOperand(FieldCell[I.Field], valueCell(M.Id, I.Args[0]));
          break;
        case Opcode::Return:
          if (Ipa && !I.Args.empty() && I.Args[0] != NoValue)
            addOperand(RetCell[M.Id], valueCell(M.Id, I.Args[0]));
          break;
        case Opcode::Call:
          if (Ipa)
            addCallEdges(M.Id, I, Cones);
          else if (I.Dst != NoValue)
            lower(valueCell(M.Id, I.Dst), kBottom);
          break;
        default:
          if (I.Dst != NoValue)
            lower(valueCell(M.Id, I.Dst), kBottom);
          break;
        }
      }
    }
  }

  bool guardOk() { return !Guard || Guard->checkpoint(); }

  const Program &P;
  const ClassHierarchy &CHA;
  RunGuard *Guard;

  std::vector<uint32_t> MethodBase;
  std::vector<Symbol> Val;
  std::vector<EvalKind> Kind;
  std::vector<std::vector<uint32_t>> Ops;
  std::vector<std::vector<uint32_t>> Deps;
  std::vector<bool> NameWatch;
  std::vector<uint32_t> RetCell, FieldCell;
  uint32_t BottomCell = 0;
  std::vector<uint32_t> Worklist;
  std::vector<bool> InWl;
  uint64_t MeetsToBottom = 0, ConcatsFolded = 0;

  ClassId Root = InvalidId, StringCls = InvalidId;
  Symbol EmptySym = 0, RunSym = 0;
};

bool ConstStringAnalysis::run(StringAnalysisMode Mode,
                              ConstStringResult &R) {
  const bool Ipa = Mode == StringAnalysisMode::Ipa;
  Root = rootClass();
  StringCls = P.findClass("String");
  EmptySym = intern("");
  RunSym = intern("run");

  // Value cells first, in (method, value) order, so the result can slice
  // them out by MethodBase directly.
  MethodBase.assign(1, 0);
  MethodBase.reserve(P.Methods.size() + 1);
  for (const Method &M : P.Methods)
    MethodBase.push_back(MethodBase.back() + M.NumValues);
  uint32_t NumVals = MethodBase.back();
  Val.assign(NumVals, kTop);
  Kind.assign(NumVals, EvalKind::Meet);
  Ops.assign(NumVals, {});
  Deps.assign(NumVals, {});
  NameWatch.assign(NumVals, false);
  RetCell.reserve(P.Methods.size());
  for (size_t I = 0; I < P.Methods.size(); ++I)
    RetCell.push_back(newCell(EvalKind::Meet, kTop));
  FieldCell.reserve(P.Fields.size());
  for (size_t I = 0; I < P.Fields.size(); ++I)
    FieldCell.push_back(newCell(EvalKind::Meet, kTop));
  BottomCell = newCell(EvalKind::Leaf, kBottom);
  InWl.assign(Val.size(), false);

  // Edge construction (one guard unit per method: the type-cone sweeps
  // dominate this stage's cost).
  for (const Method &M : P.Methods) {
    if (!M.hasBody())
      continue;
    if (Ipa && !guardOk())
      return false;
    addMethodEdges(M, Ipa);
  }

  // Propagate to fixpoint. Seed every dependent of an already-lowered
  // cell (lower() during setup enqueued into a then-shorter InWl for
  // late aux cells, so sweep once over all non-leaf cells instead).
  InWl.assign(Val.size(), false);
  Worklist.clear();
  for (uint32_t C = 0; C < Val.size(); ++C)
    if (Kind[C] != EvalKind::Leaf && !Ops[C].empty())
      enqueue(C);
  while (!Worklist.empty()) {
    if (Ipa && !guardOk())
      return false;
    uint32_t C = Worklist.back();
    Worklist.pop_back();
    InWl[C] = false;
    eval(C);
  }

  // Publish.
  R.MethodBase = std::move(MethodBase);
  R.Values.assign(Val.begin(), Val.begin() + NumVals);
  uint64_t NumConst = 0;
  for (Symbol S : R.Values)
    NumConst += S < kTop;
  R.Counters.add("conststr.values", NumVals);
  R.Counters.add("conststr.values_const", NumConst);
  R.Counters.add("conststr.meets_to_bottom", MeetsToBottom);
  R.Counters.add("conststr.concats_folded", ConcatsFolded);
  return true;
}

ConstStringResult analyzeConstStrings(const Program &P,
                                      const ClassHierarchy &CHA,
                                      const ConstStringOptions &Opts) {
  ConstStringResult R;
  R.Mode = Opts.Mode;
  if (Opts.Mode == StringAnalysisMode::Off)
    return R;
  {
    ConstStringAnalysis A(P, CHA, Opts.Guard);
    if (A.run(Opts.Mode, R))
      return R;
  }
  // Guard cutoff mid-fixpoint: an optimistic result stopped early may
  // claim constants a later meet would have refuted, so it must not be
  // used. Recompute the cheap, sound local-only answer (no further guard
  // polling: the guard is already latched stopped).
  R = ConstStringResult();
  R.Mode = Opts.Mode;
  R.Degraded = true;
  ConstStringAnalysis B(P, CHA, nullptr);
  B.run(StringAnalysisMode::Local, R);
  R.Counters.add("conststr.guard_stop");
  return R;
}

} // namespace taj
