//===- bench/ablation_strings.cpp - String-analysis ablation -------------===//
//
// Sweeps --string-analysis over {off, local, ipa} on applications whose
// planted patterns depend on string-constant facts — helper-routed
// dictionary keys and StringBuilder-computed reflective targets — and
// prints TP/FP/FN plus the conststr.* counters per mode, confirming: ipa
// resolves the helper key and the computed forName target, local only
// handles same-method constants, off degrades every dictionary read to
// the wildcard channel.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace taj;

static const StringAnalysisMode Modes[] = {
    StringAnalysisMode::Off, StringAnalysisMode::Local,
    StringAnalysisMode::Ipa};

static void runApp(const char *Label, const AppSpec &S) {
  std::printf("\n%s:\n", Label);
  for (StringAnalysisMode M : Modes) {
    GeneratedApp App = generateApp(S);
    AnalysisConfig C = AnalysisConfig::hybridUnbounded();
    C.StringAnalysis = M;
    TaintAnalysis TA(*App.P, std::move(C));
    AnalysisResult R = TA.run({App.Root});
    Classification Cl = classify(*App.P, App.Truth, R.Issues);
    std::printf("  %-5s TP=%-4u FP=%-4u FN=%-3u keysResolved=%-4llu "
                "reflResolved=%-3llu reflUnresolved=%-3llu "
                "concatsFolded=%llu\n",
                stringAnalysisModeName(M), Cl.TruePositives,
                Cl.FalsePositives, App.Truth.numReal() - Cl.RealFound,
                static_cast<unsigned long long>(
                    R.RunStats.get("conststr.map_keys_resolved")),
                static_cast<unsigned long long>(
                    R.RunStats.get("conststr.reflective_resolved")),
                static_cast<unsigned long long>(
                    R.RunStats.get("reflection.unresolved")),
                static_cast<unsigned long long>(
                    R.RunStats.get("conststr.concats_folded")));
  }
}

int main() {
  std::printf("Ablation: string-constant analysis modes (off/local/ipa)\n");

  // A focused app: only the patterns the string analysis can separate.
  AppSpec Focused;
  Focused.Name = "strings-focused";
  Focused.Seed = 7;
  Focused.Plants.TpHelperKeyMap = 4;
  Focused.Plants.TpComputedReflective = 4;
  Focused.Plants.TpMap = 2;
  Focused.Plants.TpReflective = 2;
  runApp("strings-focused (helper keys + computed reflection)", Focused);

  // The same patterns embedded in the accuracy-study applications.
  for (const AppSpec &Base : benchmarkSuite()) {
    if (!Base.InAccuracyStudy)
      continue;
    AppSpec S = Base;
    S.Plants.TpHelperKeyMap = 2;
    S.Plants.TpComputedReflective = 2;
    runApp(S.Name.c_str(), S);
  }

  std::printf("\nExpected shape: ipa reports every planted flow with no "
              "wildcard decoys; off/local trade a decoy FP per helper key "
              "and miss each computed reflective flow (its site shows up "
              "under reflection.unresolved instead).\n");
  return 0;
}
