//===- bench/micro_perf.cpp - google-benchmark micro suite ---------------===//
//
// Scaling microbenchmarks of the core engines: pointer analysis +
// call-graph construction, hybrid slicing (RHS tabulation), CI slicing,
// and SDG construction, over generated applications of increasing size.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "persist/Cache.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>

using namespace taj;

namespace {

/// Picks suite apps by size class.
const AppSpec &appByIndex(int64_t Idx) {
  static std::vector<AppSpec> Suite = benchmarkSuite();
  static const char *Names[] = {"I", "BlueBlog", "A", "Friki", "SBM"};
  for (const AppSpec &S : Suite)
    if (S.Name == Names[Idx])
      return S;
  return Suite[0];
}

void BM_PointerAnalysis(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(State.range(0));
  GeneratedApp App = generateApp(Spec);
  ClassHierarchy CHA(*App.P);
  for (auto _ : State) {
    PointsToSolver Solver(*App.P, CHA);
    Solver.solve({App.Root});
    benchmark::DoNotOptimize(Solver.callGraph().numProcessed());
  }
  State.SetLabel(Spec.Name);
}
BENCHMARK(BM_PointerAnalysis)->DenseRange(0, 4);

void BM_HybridSlicing(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(State.range(0));
  GeneratedApp App = generateApp(Spec);
  ClassHierarchy CHA(*App.P);
  PointsToSolver Solver(*App.P, CHA);
  Solver.solve({App.Root});
  for (auto _ : State) {
    SliceRunResult R = runHybridSlicer(*App.P, CHA, Solver, {});
    benchmark::DoNotOptimize(R.Issues.size());
  }
  State.SetLabel(Spec.Name);
}
BENCHMARK(BM_HybridSlicing)->DenseRange(0, 4);

/// Thread-count sweep of the parallel per-source engine over the largest
/// suite app. The range argument is the worker count; compare against the
/// /1 row for scaling (single-core machines will show no speedup — the
/// engine's promise there is only that threading costs little).
void BM_HybridSlicingThreads(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(4); // SBM, the largest app
  GeneratedApp App = generateApp(Spec);
  ClassHierarchy CHA(*App.P);
  PointsToSolver Solver(*App.P, CHA);
  Solver.solve({App.Root});
  SlicerOptions Opts;
  Opts.Threads = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    SliceRunResult R = runHybridSlicer(*App.P, CHA, Solver, Opts);
    benchmark::DoNotOptimize(R.Issues.size());
  }
  State.SetLabel(Spec.Name + "/threads=" + std::to_string(State.range(0)));
}
BENCHMARK(BM_HybridSlicingThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CiSlicing(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(State.range(0));
  GeneratedApp App = generateApp(Spec);
  ClassHierarchy CHA(*App.P);
  PointsToSolver Solver(*App.P, CHA);
  Solver.solve({App.Root});
  for (auto _ : State) {
    SliceRunResult R = runCiSlicer(*App.P, CHA, Solver, {});
    benchmark::DoNotOptimize(R.Issues.size());
  }
  State.SetLabel(Spec.Name);
}
BENCHMARK(BM_CiSlicing)->DenseRange(0, 4);

void BM_SdgConstruction(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(State.range(0));
  GeneratedApp App = generateApp(Spec);
  ClassHierarchy CHA(*App.P);
  PointsToSolver Solver(*App.P, CHA);
  Solver.solve({App.Root});
  for (auto _ : State) {
    SDGOptions SO;
    SO.ContextExpanded = true;
    SDG G(*App.P, CHA, Solver, SO);
    benchmark::DoNotOptimize(G.numNodes());
  }
  State.SetLabel(Spec.Name);
}
BENCHMARK(BM_SdgConstruction)->DenseRange(0, 4);

/// End-to-end analysis with the persistent artifact cache: the /0 row runs
/// uncached (cold), the /1 row against a prefilled cache (warm: the
/// points-to solution and SDG restore from disk instead of being computed).
/// The warm/cold ratio is the headline number of the warm-start feature.
void BM_ColdVsWarmAnalysis(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(4); // SBM, the largest app
  const bool Warm = State.range(0) != 0;
  GeneratedApp App = generateApp(Spec);

  char DirBuf[] = "/tmp/taj-bench-cache-XXXXXX";
  const char *Dir = ::mkdtemp(DirBuf);
  auto MakeConfig = [&](persist::ArtifactCache *Cache) {
    AnalysisConfig C = AnalysisConfig::hybridUnbounded();
    C.Cache = Cache;
    C.InputFingerprint = std::string("bench:") + Spec.Name;
    return C;
  };
  persist::ArtifactCache Cache(Dir ? Dir : "");
  if (Warm) {
    // Prefill so every timed iteration restores from disk.
    TaintAnalysis TA(*App.P, MakeConfig(&Cache));
    benchmark::DoNotOptimize(TA.run({App.Root}).Issues.size());
  }
  double PersistLoadMs = 0;
  for (auto _ : State) {
    TaintAnalysis TA(*App.P, MakeConfig(Warm ? &Cache : nullptr));
    AnalysisResult R = TA.run({App.Root});
    benchmark::DoNotOptimize(R.Issues.size());
    PersistLoadMs += R.PersistLoadMillis;
  }
  // Attribute the disk-restore share separately, so the warm/cold delta
  // can be split into "time saved computing" vs "time spent loading".
  State.counters["persist_load_ms"] = benchmark::Counter(
      PersistLoadMs, benchmark::Counter::kAvgIterations);
  State.SetLabel(Spec.Name + (Warm ? "/warm" : "/cold"));
  if (Dir) {
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
  }
}
BENCHMARK(BM_ColdVsWarmAnalysis)->Arg(0)->Arg(1);

void BM_Generation(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(State.range(0));
  for (auto _ : State) {
    GeneratedApp App = generateApp(Spec);
    benchmark::DoNotOptimize(App.GenStmts);
  }
  State.SetLabel(Spec.Name);
}
BENCHMARK(BM_Generation)->DenseRange(0, 4);

} // namespace

BENCHMARK_MAIN();
