//===- bench/micro_perf.cpp - google-benchmark micro suite ---------------===//
//
// Scaling microbenchmarks of the core engines: pointer analysis +
// call-graph construction, hybrid slicing (RHS tabulation), CI slicing,
// and SDG construction, over generated applications of increasing size.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "persist/Cache.h"
#include "sdg/SDG.h"
#include "server/Client.h"
#include "server/Protocol.h"
#include "slicer/Slicer.h"

#include <benchmark/benchmark.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <csignal>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace taj;

namespace {

/// A/B knob for the --verify overhead acceptance runs: TAJ_BENCH_VERIFY
/// ({off,fast,full}) selects the self-verification mode the governed
/// benchmarks run under, defaulting to off so the headline numbers stay
/// the analysis alone.
verify::VerifyMode benchVerifyMode() {
  verify::VerifyMode M = verify::VerifyMode::Off;
  if (const char *E = std::getenv("TAJ_BENCH_VERIFY"))
    verify::parseVerifyMode(E, M);
  return M;
}

/// Picks suite apps by size class.
const AppSpec &appByIndex(int64_t Idx) {
  static std::vector<AppSpec> Suite = benchmarkSuite();
  static const char *Names[] = {"I", "BlueBlog", "A", "Friki", "SBM"};
  for (const AppSpec &S : Suite)
    if (S.Name == Names[Idx])
      return S;
  return Suite[0];
}

void BM_PointerAnalysis(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(State.range(0));
  GeneratedApp App = generateApp(Spec);
  ClassHierarchy CHA(*App.P);
  for (auto _ : State) {
    PointsToSolver Solver(*App.P, CHA);
    Solver.solve({App.Root});
    benchmark::DoNotOptimize(Solver.callGraph().numProcessed());
  }
  State.SetLabel(Spec.Name);
}
BENCHMARK(BM_PointerAnalysis)->DenseRange(0, 4);

void BM_HybridSlicing(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(State.range(0));
  GeneratedApp App = generateApp(Spec);
  ClassHierarchy CHA(*App.P);
  PointsToSolver Solver(*App.P, CHA);
  Solver.solve({App.Root});
  for (auto _ : State) {
    SliceRunResult R = runHybridSlicer(*App.P, CHA, Solver, {});
    benchmark::DoNotOptimize(R.Issues.size());
  }
  State.SetLabel(Spec.Name);
}
BENCHMARK(BM_HybridSlicing)->DenseRange(0, 4);

/// Thread-count sweep of the parallel per-source engine over the largest
/// suite app. The range argument is the worker count; compare against the
/// /1 row for scaling (single-core machines will show no speedup — the
/// engine's promise there is only that threading costs little).
void BM_HybridSlicingThreads(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(4); // SBM, the largest app
  GeneratedApp App = generateApp(Spec);
  ClassHierarchy CHA(*App.P);
  PointsToSolver Solver(*App.P, CHA);
  Solver.solve({App.Root});
  SlicerOptions Opts;
  Opts.Threads = static_cast<uint32_t>(State.range(0));
  verify::Violations Vio;
  Opts.Verify = benchVerifyMode();
  if (Opts.Verify != verify::VerifyMode::Off)
    Opts.Violations = &Vio;
  for (auto _ : State) {
    SliceRunResult R = runHybridSlicer(*App.P, CHA, Solver, Opts);
    benchmark::DoNotOptimize(R.Issues.size());
  }
  if (Vio.total() != 0)
    State.SkipWithError("verify violations in clean benchmark run");
  State.SetLabel(Spec.Name + "/threads=" + std::to_string(State.range(0)));
}
BENCHMARK(BM_HybridSlicingThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CiSlicing(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(State.range(0));
  GeneratedApp App = generateApp(Spec);
  ClassHierarchy CHA(*App.P);
  PointsToSolver Solver(*App.P, CHA);
  Solver.solve({App.Root});
  for (auto _ : State) {
    SliceRunResult R = runCiSlicer(*App.P, CHA, Solver, {});
    benchmark::DoNotOptimize(R.Issues.size());
  }
  State.SetLabel(Spec.Name);
}
BENCHMARK(BM_CiSlicing)->DenseRange(0, 4);

void BM_SdgConstruction(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(State.range(0));
  GeneratedApp App = generateApp(Spec);
  ClassHierarchy CHA(*App.P);
  PointsToSolver Solver(*App.P, CHA);
  Solver.solve({App.Root});
  for (auto _ : State) {
    SDGOptions SO;
    SO.ContextExpanded = true;
    SDG G(*App.P, CHA, Solver, SO);
    benchmark::DoNotOptimize(G.numNodes());
  }
  State.SetLabel(Spec.Name);
}
BENCHMARK(BM_SdgConstruction)->DenseRange(0, 4);

/// End-to-end analysis with the persistent artifact cache: the /0 row runs
/// uncached (cold), the /1 row against a prefilled cache (warm: the
/// points-to solution and SDG restore from disk instead of being computed).
/// The warm/cold ratio is the headline number of the warm-start feature.
void BM_ColdVsWarmAnalysis(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(4); // SBM, the largest app
  const bool Warm = State.range(0) != 0;
  GeneratedApp App = generateApp(Spec);

  char DirBuf[] = "/tmp/taj-bench-cache-XXXXXX";
  const char *Dir = ::mkdtemp(DirBuf);
  auto MakeConfig = [&](persist::ArtifactCache *Cache) {
    AnalysisConfig C = AnalysisConfig::hybridUnbounded();
    C.Cache = Cache;
    C.InputFingerprint = std::string("bench:") + Spec.Name;
    return C;
  };
  persist::ArtifactCache Cache(Dir ? Dir : "");
  if (Warm) {
    // Prefill so every timed iteration restores from disk.
    TaintAnalysis TA(*App.P, MakeConfig(&Cache));
    benchmark::DoNotOptimize(TA.run({App.Root}).Issues.size());
  }
  double PersistLoadMs = 0;
  for (auto _ : State) {
    TaintAnalysis TA(*App.P, MakeConfig(Warm ? &Cache : nullptr));
    AnalysisResult R = TA.run({App.Root});
    benchmark::DoNotOptimize(R.Issues.size());
    PersistLoadMs += R.PersistLoadMillis;
  }
  // Attribute the disk-restore share separately, so the warm/cold delta
  // can be split into "time saved computing" vs "time spent loading".
  State.counters["persist_load_ms"] = benchmark::Counter(
      PersistLoadMs, benchmark::Counter::kAvgIterations);
  State.SetLabel(Spec.Name + (Warm ? "/warm" : "/cold"));
  if (Dir) {
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
  }
}
BENCHMARK(BM_ColdVsWarmAnalysis)->Arg(0)->Arg(1);

/// The analysis server's reason to exist, quantified: one warm request
/// against a running daemon (a pool worker holding the hot artifact tier)
/// vs the same warm request as a fork-per-request batch run
/// (`--batch --jobs=1`: process start, cache open, disk restore on every
/// request). Arg(0) = fork-per-request baseline, Arg(1) = server request.
/// Both rows run against a prefilled cache, so the delta isolates the
/// per-request dispatch cost, which is exactly what the daemon amortizes.
void BM_ServerWarmRequest(benchmark::State &State) {
  const bool UseServer = State.range(0) != 0;
  char DirBuf[] = "/tmp/taj-bench-serve-XXXXXX";
  const char *DirC = ::mkdtemp(DirBuf);
  const std::string Dir = DirC ? DirC : "/tmp";
  const std::string CacheDir = Dir + "/cache";

  auto Spawn = [](const std::vector<std::string> &Args, bool DropStdout) {
    pid_t Pid = ::fork();
    if (Pid != 0)
      return Pid;
    if (DropStdout) {
      int Null = ::open("/dev/null", O_WRONLY);
      if (Null >= 0) {
        ::dup2(Null, STDOUT_FILENO);
        ::close(Null);
      }
    }
    std::vector<std::string> Store;
    Store.push_back(TAJ_CLI_PATH);
    for (const std::string &A : Args)
      Store.push_back(A);
    std::vector<char *> Argv;
    for (std::string &S : Store)
      Argv.push_back(S.data());
    Argv.push_back(nullptr);
    ::execv(TAJ_CLI_PATH, Argv.data());
    ::_exit(127);
  };
  auto Wait = [](pid_t Pid) {
    int St = 0;
    while (::waitpid(Pid, &St, 0) < 0 && errno == EINTR)
      ;
    return WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  };

  if (!UseServer) {
    const std::string ListPath = Dir + "/list.txt";
    {
      std::ofstream List(ListPath);
      List << TAJ_EXAMPLE_TAJ << "\n";
    }
    std::vector<std::string> Args = {"--batch=" + ListPath, "--jobs=1",
                                     "--cache-dir=" + CacheDir};
    if (benchVerifyMode() != verify::VerifyMode::Off)
      Args.push_back(std::string("--verify=") +
                     verify::verifyModeName(benchVerifyMode()));
    if (Wait(Spawn(Args, true)) != 0) // prefill: the timed runs are warm
      State.SkipWithError("batch prefill failed");
    for (auto _ : State) {
      if (Wait(Spawn(Args, true)) != 0) {
        State.SkipWithError("batch request failed");
        break;
      }
    }
    State.SetLabel("fork-per-request");
  } else {
    const std::string Sock = Dir + "/srv.sock";
    std::vector<std::string> ServeArgs = {"--serve=" + Sock, "--pool-size=1",
                                          "--cache-dir=" + CacheDir};
    if (benchVerifyMode() != verify::VerifyMode::Off)
      ServeArgs.push_back(std::string("--verify=") +
                          verify::verifyModeName(benchVerifyMode()));
    pid_t Daemon = Spawn(ServeArgs, true);
    struct sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Sock.c_str(), Sock.size() + 1);
    bool Up = false;
    for (int I = 0; I < 500 && !Up; ++I) {
      int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (Fd >= 0) {
        Up = ::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                       sizeof(Addr)) == 0;
        ::close(Fd);
      }
      if (!Up)
        ::usleep(20000);
    }

    server::Request Req;
    server::AppSource Src;
    Src.Name = TAJ_EXAMPLE_TAJ;
    Src.Inline = true;
    {
      std::ifstream In(TAJ_EXAMPLE_TAJ, std::ios::binary);
      Src.Content = std::string((std::istreambuf_iterator<char>(In)),
                                std::istreambuf_iterator<char>());
    }
    Req.Sources.push_back(std::move(Src));

    server::Response Resp;
    std::string Err;
    // Prefill: request 1 warms the worker's hot tier.
    if (!Up || !server::requestAnalysis(Sock, Req, Resp, Err) ||
        Resp.St != server::Status::Ok)
      State.SkipWithError("server prefill failed");
    double HotHits = 0;
    for (auto _ : State) {
      if (!server::requestAnalysis(Sock, Req, Resp, Err) ||
          Resp.St != server::Status::Ok) {
        State.SkipWithError("server request failed");
        break;
      }
      const std::string Needle = "\"persist.mem_hit\":";
      size_t At = Resp.StatsJson.find(Needle);
      if (At != std::string::npos)
        HotHits += std::atof(Resp.StatsJson.c_str() + At + Needle.size());
    }
    State.counters["server_hot_hits"] =
        benchmark::Counter(HotHits, benchmark::Counter::kAvgIterations);
    State.SetLabel("server-warm");
    if (Daemon > 0) {
      ::kill(Daemon, SIGTERM);
      Wait(Daemon);
    }
  }
  if (DirC) {
    std::error_code Ec;
    std::filesystem::remove_all(DirC, Ec);
  }
}
BENCHMARK(BM_ServerWarmRequest)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Generation(benchmark::State &State) {
  const AppSpec &Spec = appByIndex(State.range(0));
  for (auto _ : State) {
    GeneratedApp App = generateApp(Spec);
    benchmark::DoNotOptimize(App.GenStmts);
  }
  State.SetLabel(Spec.Name);
}
BENCHMARK(BM_Generation)->DenseRange(0, 4);

} // namespace

BENCHMARK_MAIN();
