//===- bench/table2_benchmarks.cpp - Reproduces Table 2 ------------------===//
//
// Prints, per benchmark application: the statistics the paper reports
// (Table 2) and the statistics of our scaled synthetic regeneration.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace taj;

int main() {
  std::printf("Table 2: Statistics on the Applications Used in the "
              "Experiments\n");
  std::printf("%-14s %-12s | %7s %8s %7s %8s %8s %8s | %7s %7s %7s %6s\n",
              "Application", "Version", "Files", "Lines", "Cls(a)", "Mth(a)",
              "Cls(t)", "Mth(t)", "GenCls", "GenMth", "GenStmt", "Real");
  uint64_t TotalStmts = 0, TotalMethods = 0;
  for (const AppSpec &S : benchmarkSuite()) {
    GeneratedApp App = generateApp(S);
    const PaperStats &P = S.Paper;
    std::printf(
        "%-14s %-12s | %7u %8u %7u %8u %8u %8u | %7u %7u %7u %6u\n",
        S.Name.c_str(), S.Version.c_str(), P.Files, P.Lines, P.ClassesApp,
        P.MethodsApp, P.ClassesTotal, P.MethodsTotal, App.GenClasses,
        App.GenMethods, App.GenStmts, App.Truth.numReal());
    TotalStmts += App.GenStmts;
    TotalMethods += App.GenMethods;
  }
  std::printf("\nGenerated suite total: %llu methods, %llu statements "
              "(paper columns reprinted verbatim).\n",
              static_cast<unsigned long long>(TotalMethods),
              static_cast<unsigned long long>(TotalStmts));
  return 0;
}
