//===- bench/BenchCommon.h - Shared bench harness helpers ------*- C++ -*-===//
//
// Part of the TAJ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef TAJ_BENCH_BENCHCOMMON_H
#define TAJ_BENCH_BENCHCOMMON_H

#include "benchgen/Generator.h"
#include "core/TaintAnalysis.h"

#include <cstdio>
#include <string>

namespace taj {
namespace bench {

/// The call-graph node budget standing in for the paper's 20,000 nodes
/// (the suite is scaled down by roughly the same factor).
inline constexpr uint32_t ScaledCgBudget = 400;

/// The five Table 1 configurations at bench scale.
inline AnalysisConfig configByName(const std::string &Name) {
  if (Name == "hybrid-unbounded")
    return AnalysisConfig::hybridUnbounded();
  if (Name == "hybrid-prioritized")
    return AnalysisConfig::hybridPrioritized(ScaledCgBudget);
  if (Name == "hybrid-optimized")
    return AnalysisConfig::hybridOptimized(ScaledCgBudget,
                                           /*HeapTransitions=*/20000,
                                           /*FlowLength=*/14,
                                           /*NestedDepth=*/2);
  if (Name == "cs")
    return AnalysisConfig::cs();
  return AnalysisConfig::ci();
}

inline const char *const AllConfigs[] = {
    "hybrid-unbounded", "hybrid-prioritized", "hybrid-optimized", "cs",
    "ci"};

/// Runs one configuration on one generated app.
inline AnalysisResult runConfig(GeneratedApp &App, const std::string &Name) {
  TaintAnalysis TA(*App.P, configByName(Name));
  return TA.run({App.Root});
}

} // namespace bench
} // namespace taj

#endif // TAJ_BENCH_BENCHCOMMON_H
