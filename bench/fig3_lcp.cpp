//===- bench/fig3_lcp.cpp - Reproduces Figure 3 / §5 ---------------------===//
//
// Demonstrates library-call-point report grouping: two flows that enter
// the library at the same call (the paper's n4) and end in two sinks of
// the same issue type collapse into one report; a flow entering at a
// different call point, and a flow of a different issue type, stay
// separate — the p1..p5 scenario of Figure 3.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "frontend/Parser.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "report/ReportGenerator.h"

#include <cstdio>

using namespace taj;

static const char *Source = R"(
class LibHelper extends Object [library] {
  method process(this: LibHelper, s: String, w: Writer): void {
    this.emitA(s, w);
    this.emitB(s, w);
  }
  method emitA(this: LibHelper, s: String, w: Writer): void {
    w.println(s);
  }
  method emitB(this: LibHelper, s: String, w: Writer): void {
    w.println(s);
  }
  method other(this: LibHelper, s: String, w: Writer): void {
    w.println(s);
  }
}
class App extends Servlet {
  method doGet(this: App, req: Request, resp: Response, db: Database,
               lib: LibHelper): void [entry] {
    t = req.getParameter("name");
    w = resp.getWriter();
    lib.process(t, w);
    lib.other(t, w);
    q = db.executeQuery(t);
  }
}
)";

int main() {
  Program P;
  installBuiltinLibrary(P);
  std::vector<std::string> Errors;
  if (!parseTaj(P, Source, &Errors)) {
    std::printf("parse error: %s\n", Errors.front().c_str());
    return 1;
  }
  MethodId Root = synthesizeEntrypointDriver(P);
  P.indexStatements();
  TaintAnalysis TA(P, AnalysisConfig::hybridUnbounded());
  AnalysisResult R = TA.run({Root});

  std::printf("Figure 3 / Section 5: LCP-based redundancy elimination\n\n");
  std::printf("Raw flows reported by the analysis: %zu\n", R.Issues.size());
  for (const Issue &I : R.Issues)
    std::printf("  %s: %s -> %s (length %u)\n", rules::ruleName(I.Rule),
                describeStmt(P, I.Source).c_str(),
                describeStmt(P, I.Sink).c_str(), I.Length);

  std::vector<Report> Reports = generateReports(P, R.Issues);
  std::printf("\nAfter grouping by (LCP, remediation action): %zu reports\n",
              Reports.size());
  std::printf("%s", renderReports(P, Reports).c_str());
  std::printf("\nThe two sinks reached through lib.process share one LCP and"
              " one remediation action:\nsanitizing at that call point fixes"
              " both flows, so only a representative is shown.\n");
  return 0;
}
