//===- bench/fig2_hsdg.cpp - Reproduces Figure 2 -------------------------===//
//
// Builds the paper's motivating program (Figure 1), runs the preliminary
// pointer analysis, and prints a fragment of the Hybrid SDG: the no-heap
// nodes of doGet plus the direct store->load edges and the taint-carrier
// store->sink edge the hybrid slicer synthesizes — the structure Figure 2
// illustrates.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "frontend/Parser.h"
#include "model/BuiltinLibrary.h"
#include "model/Entrypoints.h"
#include "slicer/HeapEdges.h"

#include <cstdio>

using namespace taj;

static const char *MotivatingSource = R"(
class Internal extends Object {
  field s: String;
  method init(this: Internal, s: String): void { this.s = s; }
}
class Motivating extends Object {
  method doGet(this: Motivating, req: Request, resp: Response): void [entry] {
    t1 = req.getParameter("fName");
    t2 = req.getParameter("lName");
    w = resp.getWriter();
    k = Class.forName("Motivating");
    idm = k.getMethod("id");
    m = new HashMap;
    m.put("fName", t1);
    m.put("lName", t2);
    d = "2009-06-15";
    m.put("date", d);
    a1 = new Object[];
    v1 = m.get("fName");
    a1[] = v1;
    s1 = idm.invoke(this, a1);
    a2 = new Object[];
    v2 = m.get("lName");
    e2 = Encoder.encode(v2);
    a2[] = e2;
    s2 = idm.invoke(this, a2);
    a3 = new Object[];
    v3 = m.get("date");
    a3[] = v3;
    s3 = idm.invoke(this, a3);
    i1 = new Internal(s1);
    i2 = new Internal(s2);
    i3 = new Internal(s3);
    w.println(i1);
    w.println(i2);
    w.println(i3);
  }
  method id(this: Motivating, s: String): String { return s; }
}
)";

int main() {
  Program P;
  installBuiltinLibrary(P);
  std::vector<std::string> Errors;
  if (!parseTaj(P, MotivatingSource, &Errors)) {
    std::printf("parse error: %s\n", Errors.front().c_str());
    return 1;
  }
  MethodId Root = synthesizeEntrypointDriver(P);
  P.indexStatements();
  ClassHierarchy CHA(P);
  PointsToSolver Solver(P, CHA);
  Solver.solve({Root});

  SDGOptions SO;
  SO.ContextExpanded = true;
  SDG G(P, CHA, Solver, SO);
  HeapGraph HG(Solver);
  HeapEdges HE(P, G, Solver, HG, /*NestedDepth=*/2);

  std::printf("Figure 2: Fragment of the HSDG (motivating program)\n\n");
  std::printf("Store/load/source/sink statement nodes:\n");
  for (SDGNodeId N = 0; N < G.numNodes(); ++N) {
    const SDGNode &Node = G.node(N);
    if (Node.Kind != SDGNodeKind::Stmt)
      continue;
    if (Node.Access == HeapAccess::None && !Node.SourceMask &&
        !Node.SinkMask && !Node.SanitizeMask)
      continue;
    std::printf("  [%u] %s\n", N, G.nodeToString(N).c_str());
  }
  std::printf("\nDirect store->load edges (flow-insensitive, from the "
              "preliminary pointer analysis):\n");
  for (SDGNodeId St : G.storeNodes())
    for (SDGNodeId L : HE.loadsFor(St))
      std::printf("  [%u] --direct--> [%u]\n", St, L);
  std::printf("\nTaint-carrier store->sink edges (nested taint, depth 2):\n");
  for (SDGNodeId St : G.storeNodes())
    for (SDGNodeId Sk : HE.carrierSinksFor(St))
      std::printf("  [%u] --carrier--> [%u]  (%s)\n", St, Sk,
                  G.nodeToString(Sk).c_str());
  std::printf("\nLoad-to-store/sink summary edges are computed on demand by "
              "RHS tabulation over the no-heap SDG.\n");
  return 0;
}
