//===- bench/table3_comparison.cpp - Reproduces Table 3 ------------------===//
//
// Runs the five configurations on every benchmark application and prints
// issues + running time per cell, side by side with the paper's numbers.
// "-" marks CS thin slicing failing to complete (memory budget), as in the
// paper's empty Table 3 entries.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace taj;

int main() {
  std::printf("Table 3: Issues and Time per Configuration "
              "(ours: issues/ms, paper: issues/s in parentheses)\n");
  std::printf("%-14s | %-18s %-18s %-18s %-18s %-18s\n", "Application",
              "HybridUnbounded", "HybridPrioritized", "HybridOptimized",
              "CS", "CI");
  double TotalMs[5] = {0, 0, 0, 0, 0};
  uint64_t TotalIssues[5] = {0, 0, 0, 0, 0};
  for (const AppSpec &S : benchmarkSuite()) {
    std::printf("%-14s |", S.Name.c_str());
    const PaperStats &P = S.Paper;
    uint32_t PaperIssues[5] = {P.HybridUnbounded, P.HybridPrioritized,
                               P.HybridOptimized, P.Cs, P.Ci};
    for (int C = 0; C < 5; ++C) {
      GeneratedApp App = generateApp(S);
      AnalysisResult R = bench::runConfig(App, bench::AllConfigs[C]);
      char Cell[64];
      if (!R.Completed) {
        std::snprintf(Cell, sizeof(Cell), "- (-)");
      } else {
        uint32_t N = distinctIssueCount(R.Issues);
        TotalIssues[C] += N;
        TotalMs[C] += R.Millis;
        std::snprintf(Cell, sizeof(Cell), "%u/%.0fms (%u)", N, R.Millis,
                      PaperIssues[C]);
      }
      std::printf(" %-18s", Cell);
    }
    std::printf("\n");
  }
  std::printf("%-14s |", "TOTAL");
  for (int C = 0; C < 5; ++C)
    std::printf(" %llu/%.0fms%9s",
                static_cast<unsigned long long>(TotalIssues[C]), TotalMs[C],
                "");
  std::printf("\n\nPaper trends to compare: CS completes on 6 of 22 apps;"
              " prioritized reports far fewer issues than unbounded;\n"
              "optimized recovers Webgoat issues lost by prioritized and"
              " trims long-flow false positives.\n");
  return 0;
}
