//===- bench/fig4_accuracy.cpp - Reproduces Figure 4 ---------------------===//
//
// Classification of reported issues into true and false positives on the
// nine benchmarks of the paper's accuracy study, plus the per-algorithm
// accuracy scores of §7.2 (paper: hybrid 0.35, CS 0.54, CI 0.22) and the
// CS false negatives (2/1/2 on BlueBlog/I/SBM).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace taj;

int main() {
  std::printf("Figure 4: Classification of Reported Issues into True and "
              "False Positives\n");
  std::printf("%-12s | %-12s %-12s %-12s %-12s %-12s   (cells: TP/FP, FN)\n",
              "Application", "HybridUnb", "HybridPri", "HybridOpt", "CS",
              "CI");
  uint64_t Tp[5] = {0}, Fp[5] = {0};
  for (const AppSpec &S : benchmarkSuite()) {
    if (!S.InAccuracyStudy)
      continue;
    std::printf("%-12s |", S.Name.c_str());
    for (int C = 0; C < 5; ++C) {
      GeneratedApp App = generateApp(S);
      AnalysisResult R = bench::runConfig(App, bench::AllConfigs[C]);
      char Cell[48];
      if (!R.Completed) {
        std::snprintf(Cell, sizeof(Cell), "-");
      } else {
        Classification Cl = classify(*App.P, App.Truth, R.Issues);
        uint32_t Fn = App.Truth.numReal() - Cl.RealFound;
        std::snprintf(Cell, sizeof(Cell), "%u/%u,%u", Cl.TruePositives,
                      Cl.FalsePositives, Fn);
        Tp[C] += Cl.TruePositives;
        Fp[C] += Cl.FalsePositives;
      }
      std::printf(" %-12s", Cell);
    }
    std::printf("\n");
  }
  std::printf("\nAccuracy scores (TP / (TP+FP)); paper: hybrid-unbounded "
              "0.35, CS 0.54, CI 0.22:\n");
  for (int C = 0; C < 5; ++C) {
    double Acc = Tp[C] + Fp[C] ? double(Tp[C]) / double(Tp[C] + Fp[C]) : 0;
    std::printf("  %-18s TP=%llu FP=%llu accuracy=%.2f\n",
                bench::AllConfigs[C], static_cast<unsigned long long>(Tp[C]),
                static_cast<unsigned long long>(Fp[C]), Acc);
  }
  return 0;
}
