//===- bench/table1_settings.cpp - Reproduces Table 1 --------------------===//
//
// Prints the settings matrix of the five evaluated configurations
// (TAJ Table 1). All configurations use the §4 synthetic models, which the
// paper notes are key to good performance.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace taj;

int main() {
  std::printf("Table 1: Settings Used for the Evaluated Algorithms\n");
  std::printf("%-20s %-8s %-10s %-9s %-9s %-8s %-7s %-9s\n", "Config",
              "Models", "Priority", "CG-bound", "HeapHops", "FlowLen",
              "Nested", "Whitelist");
  for (const char *Name : bench::AllConfigs) {
    AnalysisConfig C = bench::configByName(Name);
    auto OnOff = [](bool B) { return B ? "yes" : "-"; };
    char CgBuf[16], HopBuf[16], LenBuf[16], DepBuf[16];
    std::snprintf(CgBuf, sizeof(CgBuf), "%u", C.MaxCallGraphNodes);
    std::snprintf(HopBuf, sizeof(HopBuf), "%u", C.MaxHeapTransitions);
    std::snprintf(LenBuf, sizeof(LenBuf), "%u", C.MaxFlowLength);
    std::snprintf(DepBuf, sizeof(DepBuf), "%u", C.NestedTaintDepth);
    std::printf("%-20s %-8s %-10s %-9s %-9s %-8s %-7s %-9s\n", C.Name.c_str(),
                "yes", OnOff(C.Prioritized),
                C.MaxCallGraphNodes ? CgBuf : "-",
                C.MaxHeapTransitions ? HopBuf : "-",
                C.MaxFlowLength ? LenBuf : "-", DepBuf,
                OnOff(C.ExcludeWhitelisted));
  }
  std::printf("\nPaper bounds: CG 20,000 nodes / heap transitions 20,000 /"
              " flow length 14 / nested depth 2.\n");
  std::printf("This harness scales the CG bound to %u nodes to match the"
              " scaled-down suite.\n", bench::ScaledCgBudget);
  return 0;
}
