//===- bench/ablation_priority.cpp - §6.1 claim --------------------------===//
//
// "Priority-driven call-graph construction enables the detection of a
// significantly larger number of taint vulnerabilities than chaotic
// iteration when TAJ runs in a constrained time or memory budget."
//
// Sweeps the call-graph node budget on two large applications and prints
// true positives found under the priority policy vs chaotic iteration.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace taj;

int main() {
  std::printf("Ablation (§6.1): priority-driven vs chaotic call-graph "
              "construction under a node budget\n");
  std::printf("%-12s %-8s | %-22s | %-22s\n", "Application", "Budget",
              "prioritized TP/issues", "chaotic TP/issues");
  const uint32_t Budgets[] = {50, 100, 200, 400, 800, 0};
  for (const AppSpec &S : benchmarkSuite()) {
    if (S.Name != "Roller" && S.Name != "VQWiki" && S.Name != "S")
      continue;
    for (uint32_t Budget : Budgets) {
      char Row[2][32];
      for (int Mode = 0; Mode < 2; ++Mode) {
        GeneratedApp App = generateApp(S);
        AnalysisConfig C = AnalysisConfig::hybridUnbounded();
        C.MaxCallGraphNodes = Budget;
        C.Prioritized = Mode == 0;
        TaintAnalysis TA(*App.P, std::move(C));
        AnalysisResult R = TA.run({App.Root});
        Classification Cl = classify(*App.P, App.Truth, R.Issues);
        std::snprintf(Row[Mode], sizeof(Row[Mode]), "%u/%u (of %u real)",
                      Cl.RealFound, distinctIssueCount(R.Issues),
                      App.Truth.numReal());
      }
      char BudgetStr[16];
      if (Budget)
        std::snprintf(BudgetStr, sizeof(BudgetStr), "%u", Budget);
      else
        std::snprintf(BudgetStr, sizeof(BudgetStr), "inf");
      std::printf("%-12s %-8s | %-22s | %-22s\n", S.Name.c_str(), BudgetStr,
                  Row[0], Row[1]);
    }
  }
  std::printf("\nExpected shape: at small budgets the prioritized policy "
              "finds more of the planted real flows than chaotic "
              "iteration; both converge when the budget covers the "
              "program.\n");
  return 0;
}
