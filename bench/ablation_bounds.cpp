//===- bench/ablation_bounds.cpp - §6.2 claims ---------------------------===//
//
// Sweeps the three §6.2 bounds — heap store->load transitions, flow
// length, nested-taint depth — on accuracy-study applications and prints
// TP/FP per setting, confirming: tighter bounds trade recall for
// precision, longer flows are likelier false positives, and depth 2
// suffices for nested taint.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace taj;

static void runWith(const AppSpec &S, const char *Label,
                    AnalysisConfig C) {
  GeneratedApp App = generateApp(S);
  TaintAnalysis TA(*App.P, std::move(C));
  AnalysisResult R = TA.run({App.Root});
  Classification Cl = classify(*App.P, App.Truth, R.Issues);
  std::printf("  %-28s TP=%-4u FP=%-4u FN=%u\n", Label, Cl.TruePositives,
              Cl.FalsePositives, App.Truth.numReal() - Cl.RealFound);
}

int main() {
  std::printf("Ablation (§6.2): bounds on analysis dimensions\n");
  for (const AppSpec &S : benchmarkSuite()) {
    if (S.Name != "BlueBlog" && S.Name != "Friki" && S.Name != "SBM")
      continue;
    std::printf("\n%s:\n", S.Name.c_str());

    std::printf(" flow-length filter (§6.2.2):\n");
    for (uint32_t Len : {4u, 8u, 14u, 0u}) {
      AnalysisConfig C = AnalysisConfig::hybridUnbounded();
      C.MaxFlowLength = Len;
      char Label[32];
      std::snprintf(Label, sizeof(Label), "  maxFlowLength=%s",
                    Len ? std::to_string(Len).c_str() : "inf");
      runWith(S, Label, std::move(C));
    }

    std::printf(" nested-taint depth (§6.2.3):\n");
    for (uint32_t D : {0u, 1u, 2u, 4u, 32u}) {
      AnalysisConfig C = AnalysisConfig::hybridUnbounded();
      C.NestedTaintDepth = D;
      char Label[32];
      std::snprintf(Label, sizeof(Label), "  nestedDepth=%u", D);
      runWith(S, Label, std::move(C));
    }

    std::printf(" heap store->load transitions (§6.2.1):\n");
    for (uint32_t H : {1u, 4u, 16u, 0u}) {
      AnalysisConfig C = AnalysisConfig::hybridUnbounded();
      C.MaxHeapTransitions = H;
      char Label[40];
      std::snprintf(Label, sizeof(Label), "  maxHeapTransitions=%s",
                    H ? std::to_string(H).c_str() : "inf");
      runWith(S, Label, std::move(C));
    }
  }
  std::printf("\nExpected shape: depth 2 keeps every planted carrier flow "
              "(paper: 2 levels suffice); the length filter trims "
              "long decoys before it costs true positives.\n");
  return 0;
}
